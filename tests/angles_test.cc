// Algorithm 1 / Eq. (4)-(7): the Givens decomposition must reconstruct
// V * Dtilde^dagger exactly, and the structural invariants the paper
// relies on (real non-negative last row, immunity to common phases) must
// hold for every (M, NSS) geometry the standard allows here.
#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "feedback/angles.h"
#include "linalg/svd.h"

namespace deepcsi::feedback {
namespace {

using linalg::CMat;
using linalg::cplx;

CMat random_v(std::size_t m, std::size_t nss, std::mt19937_64& rng) {
  const CMat a = CMat::random_gaussian(m, m, rng);
  return linalg::svd(a).v.first_columns(nss);
}

TEST(NumAnglesTest, MatchesStandardTable) {
  // 802.11ac Table: number of angles for (Nr, Nc).
  EXPECT_EQ(num_angles(2, 1), 1u);
  EXPECT_EQ(num_angles(2, 2), 1u);
  EXPECT_EQ(num_angles(3, 1), 2u);
  EXPECT_EQ(num_angles(3, 2), 3u);
  EXPECT_EQ(num_angles(3, 3), 3u);
  EXPECT_EQ(num_angles(4, 1), 3u);
  EXPECT_EQ(num_angles(4, 2), 5u);
  EXPECT_EQ(num_angles(4, 3), 6u);
  EXPECT_EQ(num_angles(4, 4), 6u);
}

TEST(DMatrixTest, StructureOfEquation4) {
  const std::vector<double> phi = {0.3, 1.1};
  const CMat d = d_matrix(3, 1, phi);
  EXPECT_NEAR(std::abs(d(0, 0) - std::polar(1.0, 0.3)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(d(1, 1) - std::polar(1.0, 1.1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(d(2, 2) - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(d(0, 1)), 0.0, 1e-12);
  EXPECT_TRUE(linalg::is_unitary(d));
}

TEST(GMatrixTest, StructureOfEquation5) {
  const double psi = 0.7;
  const CMat g = g_matrix(3, 3, 1, psi);
  EXPECT_NEAR(g(0, 0).real(), std::cos(psi), 1e-12);
  EXPECT_NEAR(g(0, 2).real(), std::sin(psi), 1e-12);
  EXPECT_NEAR(g(2, 0).real(), -std::sin(psi), 1e-12);
  EXPECT_NEAR(g(2, 2).real(), std::cos(psi), 1e-12);
  EXPECT_NEAR(std::abs(g(1, 1) - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_TRUE(linalg::is_unitary(g));
}

class DecomposeReconstructTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DecomposeReconstructTest, ExactWithoutQuantization) {
  const auto [m, nss] = GetParam();
  std::mt19937_64 rng(100 * m + nss);
  for (int trial = 0; trial < 40; ++trial) {
    const CMat v = random_v(static_cast<std::size_t>(m),
                            static_cast<std::size_t>(nss), rng);
    const BfmAngles angles = decompose_v(v);
    EXPECT_EQ(angles.phi.size(), num_angles(m, nss));
    EXPECT_EQ(angles.psi.size(), num_angles(m, nss));
    const CMat vt = reconstruct_v(angles);

    // Vtilde = V * Dtilde^dagger: same matrix after normalizing V's last
    // row phases.
    CMat expected = v;
    for (int c = 0; c < nss; ++c)
      expected.scale_col(
          static_cast<std::size_t>(c),
          std::polar(1.0, -std::arg(v(static_cast<std::size_t>(m - 1),
                                      static_cast<std::size_t>(c)))));
    EXPECT_LT(linalg::max_abs_diff(vt, expected), 1e-9);
  }
}

TEST_P(DecomposeReconstructTest, LastRowRealNonNegative) {
  const auto [m, nss] = GetParam();
  std::mt19937_64 rng(500 + 10 * m + nss);
  for (int trial = 0; trial < 40; ++trial) {
    const CMat v = random_v(static_cast<std::size_t>(m),
                            static_cast<std::size_t>(nss), rng);
    const CMat vt = reconstruct_v(decompose_v(v));
    for (int c = 0; c < nss; ++c) {
      const cplx last = vt(static_cast<std::size_t>(m - 1),
                           static_cast<std::size_t>(c));
      EXPECT_NEAR(last.imag(), 0.0, 1e-9);
      EXPECT_GE(last.real(), -1e-9);
    }
  }
}

TEST_P(DecomposeReconstructTest, ColumnsStayOrthonormal) {
  const auto [m, nss] = GetParam();
  std::mt19937_64 rng(900 + 10 * m + nss);
  const CMat v = random_v(static_cast<std::size_t>(m),
                          static_cast<std::size_t>(nss), rng);
  const CMat vt = reconstruct_v(decompose_v(v));
  EXPECT_LT(linalg::orthonormality_defect(vt), 1e-9);
}

TEST_P(DecomposeReconstructTest, AngleRangesAreStandardCompliant) {
  const auto [m, nss] = GetParam();
  std::mt19937_64 rng(1300 + 10 * m + nss);
  for (int trial = 0; trial < 40; ++trial) {
    const CMat v = random_v(static_cast<std::size_t>(m),
                            static_cast<std::size_t>(nss), rng);
    const BfmAngles angles = decompose_v(v);
    for (double phi : angles.phi) {
      EXPECT_GE(phi, 0.0);
      EXPECT_LT(phi, 2.0 * std::numbers::pi);
    }
    for (double psi : angles.psi) {
      EXPECT_GE(psi, 0.0);
      EXPECT_LE(psi, std::numbers::pi / 2.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DecomposeReconstructTest,
    ::testing::Values(std::pair<int, int>{2, 1}, std::pair<int, int>{2, 2},
                      std::pair<int, int>{3, 1}, std::pair<int, int>{3, 2},
                      std::pair<int, int>{3, 3}, std::pair<int, int>{4, 1},
                      std::pair<int, int>{4, 2}, std::pair<int, int>{4, 3},
                      std::pair<int, int>{4, 4}));

TEST(BeamformingVTest, ExtractsRightSingularVectorsOfHTransposed) {
  std::mt19937_64 rng(31);
  std::vector<CMat> h;
  for (int k = 0; k < 4; ++k) h.push_back(CMat::random_gaussian(3, 2, rng));
  const std::vector<CMat> v = beamforming_v(h, 2);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(v[k].rows(), 3u);
    EXPECT_EQ(v[k].cols(), 2u);
    EXPECT_LT(linalg::orthonormality_defect(v[k]), 1e-9);
    const linalg::Svd d = linalg::svd(h[k].transpose());
    EXPECT_LT(linalg::subspace_distance(v[k], d.v.first_columns(2)), 1e-7);
  }
}

TEST(BeamformingVTest, RejectsMoreStreamsThanReceiveAntennas) {
  std::mt19937_64 rng(32);
  std::vector<CMat> h{CMat::random_gaussian(3, 2, rng)};
  EXPECT_THROW(beamforming_v(h, 3), std::logic_error);
}

TEST(BeamformingVTest, CommonPhaseAndRxPhasesDoNotChangeVtilde) {
  // The end-to-end invariance the paper's design rests on: offsets that
  // multiply whole columns of H^T (common phase, per-RX-antenna phase)
  // leave the reconstructed Vtilde untouched.
  std::mt19937_64 rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const CMat h = CMat::random_gaussian(3, 2, rng);
    std::uniform_real_distribution<double> u(-3.0, 3.0);
    CMat h2 = h * std::polar(1.0, u(rng));  // common phase (PPO/CFO/PDD@k)
    h2.scale_col(0, std::polar(1.0, u(rng)));  // RX antenna 0 phase
    h2.scale_col(1, std::polar(1.0, u(rng)));  // RX antenna 1 phase

    const CMat vt1 = reconstruct_v(decompose_v(beamforming_v({h}, 2)[0]));
    const CMat vt2 = reconstruct_v(decompose_v(beamforming_v({h2}, 2)[0]));
    EXPECT_LT(linalg::max_abs_diff(vt1, vt2), 1e-7);
  }
}

TEST(BeamformingVTest, PerTxChainPhasePercolatesIntoVtilde) {
  // ... whereas per-TX-chain offsets (the fingerprint) do change Vtilde.
  std::mt19937_64 rng(34);
  const CMat h = CMat::random_gaussian(3, 2, rng);
  CMat h2 = h;
  h2.scale_row(0, std::polar(1.0, 0.8));  // TX chain 0 phase offset
  const CMat vt1 = reconstruct_v(decompose_v(beamforming_v({h}, 2)[0]));
  const CMat vt2 = reconstruct_v(decompose_v(beamforming_v({h2}, 2)[0]));
  EXPECT_GT(linalg::max_abs_diff(vt1, vt2), 0.05);
}

}  // namespace
}  // namespace deepcsi::feedback
