// MU-MIMO pre-coding: zero-forcing nulls ISI/IUI under perfect feedback;
// quantized feedback leaves residual interference. This quantifies the
// paper's Sec. II-A argument for fingerprinting the (unprecoded) NDP
// instead of data transmissions.
#include <gtest/gtest.h>

#include <random>

#include "feedback/quantizer.h"
#include "linalg/solve.h"
#include "phy/precoding.h"
#include "phy/tgac.h"

namespace deepcsi::phy {
namespace {

using linalg::CMat;
using linalg::cplx;

TEST(SolveTest, InverseOfIdentityAndRandom) {
  EXPECT_LT(linalg::max_abs_diff(linalg::inverse(CMat::identity(3)),
                                 CMat::identity(3)),
            1e-12);
  std::mt19937_64 rng(3);
  for (int t = 0; t < 20; ++t) {
    const CMat a = CMat::random_gaussian(4, 4, rng);
    const CMat inv = linalg::inverse(a);
    EXPECT_LT(linalg::max_abs_diff(a * inv, CMat::identity(4)), 1e-9);
    EXPECT_LT(linalg::max_abs_diff(inv * a, CMat::identity(4)), 1e-9);
  }
}

TEST(SolveTest, SolveMatchesInverse) {
  std::mt19937_64 rng(5);
  const CMat a = CMat::random_gaussian(3, 3, rng);
  const CMat b = CMat::random_gaussian(3, 2, rng);
  const CMat x = linalg::solve(a, b);
  EXPECT_LT(linalg::max_abs_diff(a * x, b), 1e-10);
}

TEST(SolveTest, SingularSystemThrows) {
  CMat a(2, 2);
  a(0, 0) = {1, 0};
  a(0, 1) = {2, 0};
  a(1, 0) = {2, 0};
  a(1, 1) = {4, 0};  // rank 1
  EXPECT_THROW(linalg::inverse(a), std::logic_error);
}

TEST(SolveTest, NonSquareThrows) {
  EXPECT_THROW(linalg::inverse(CMat(2, 3)), std::logic_error);
}

// Two-user MU-MIMO fixture on random channels (M = 3, N_u = 2 each is too
// many streams; use NSS = 1 per user or 2+1).
struct MuMimoSetup {
  std::vector<UserChannel> users;
  std::vector<CMat> v_exact;
};

MuMimoSetup make_setup(std::mt19937_64& rng, int nss0 = 1, int nss1 = 1) {
  const TgacChannel tgac;
  MuMimoSetup s;
  for (int nss : {nss0, nss1}) {
    const Cfr cfr = tgac.realize(3, 2, {0 + 2}, rng);
    s.users.push_back({cfr.h[0], nss});
    s.v_exact.push_back(feedback::beamforming_v({cfr.h[0]}, nss)[0]);
  }
  return s;
}

TEST(PrecodingTest, PerfectFeedbackNullsInterUserInterference) {
  std::mt19937_64 rng(7);
  for (int t = 0; t < 10; ++t) {
    MuMimoSetup s = make_setup(rng);
    const CMat w = zero_forcing_precoder(s.users, s.v_exact);
    EXPECT_EQ(w.rows(), 3u);
    EXPECT_EQ(w.cols(), 2u);
    // Stream 1 (user 1's beam) must be invisible along user 0's reported
    // direction and vice versa.
    for (int u = 0; u < 2; ++u) {
      const CMat cross = s.v_exact[static_cast<std::size_t>(u)].hermitian() * w;
      // Column of the *other* user:
      const std::size_t other_col = static_cast<std::size_t>(1 - u);
      EXPECT_LT(std::abs(cross(0, other_col)), 1e-9);
    }
  }
}

TEST(PrecodingTest, QuantizationCreatesAnInterferenceFloor) {
  // At moderate SNR the (7,9) codebook is nearly lossless (that is the
  // standard's design goal), but in the noise-free limit the residual
  // ISI/IUI from quantized feedback caps the SINR while perfect feedback
  // keeps scaling with SNR.
  // Fully loaded system (2+1 streams on 3 antennas): the beamformees have
  // no spare spatial degrees of freedom to null residual interference, so
  // the quantization floor is visible.
  std::mt19937_64 rng(11);
  double exact_mid = 0.0, quant_mid = 0.0;
  double exact_hi = 0.0, quant_hi = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    MuMimoSetup s = make_setup(rng, 2, 1);
    std::vector<CMat> v_quant;
    for (const CMat& v : s.v_exact)
      v_quant.push_back(
          feedback::quantized_vtilde(v, feedback::mu_mimo_codebook_high()));
    const CMat w_exact = zero_forcing_precoder(s.users, s.v_exact);
    const CMat w_quant = zero_forcing_precoder(s.users, v_quant);

    exact_mid += mean_sinr_db(mu_mimo_sinr(s.users, w_exact, 1e-4));
    quant_mid += mean_sinr_db(mu_mimo_sinr(s.users, w_quant, 1e-4));
    exact_hi += mean_sinr_db(mu_mimo_sinr(s.users, w_exact, 1e-9));
    quant_hi += mean_sinr_db(mu_mimo_sinr(s.users, w_quant, 1e-9));
  }
  exact_mid /= trials;
  quant_mid /= trials;
  exact_hi /= trials;
  quant_hi /= trials;
  // Moderate SNR: codebook loss within a few dB either way.
  EXPECT_GT(exact_mid, 30.0);
  EXPECT_NEAR(quant_mid, exact_mid, 6.0);
  // Noise-free limit: perfect feedback keeps the full 50 dB gain,
  // quantized feedback hits its interference floor well below it.
  EXPECT_GT(exact_hi, exact_mid + 30.0);
  EXPECT_LT(quant_hi, exact_hi - 10.0);
}

TEST(PrecodingTest, LowCodebookWorseThanHigh) {
  std::mt19937_64 rng(13);
  double high_db = 0.0, low_db = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    MuMimoSetup s = make_setup(rng);
    const double noise = 1e-4;
    for (const auto& [cfg, acc] :
         {std::pair{feedback::mu_mimo_codebook_high(), &high_db},
          std::pair{feedback::mu_mimo_codebook_low(), &low_db}}) {
      std::vector<CMat> vq;
      for (const CMat& v : s.v_exact)
        vq.push_back(feedback::quantized_vtilde(v, cfg));
      *acc += mean_sinr_db(
          mu_mimo_sinr(s.users, zero_forcing_precoder(s.users, vq), noise));
    }
  }
  EXPECT_GT(high_db, low_db);
}

TEST(PrecodingTest, ColumnPhaseOfFeedbackIrrelevant) {
  // Vtilde differs from V by per-column phases; the precoder must not
  // care (this is why Dtilde is never transmitted).
  std::mt19937_64 rng(17);
  MuMimoSetup s = make_setup(rng);
  std::vector<CMat> v_rot = s.v_exact;
  v_rot[0].scale_col(0, std::polar(1.0, 1.234));
  const CMat w1 = zero_forcing_precoder(s.users, s.v_exact);
  const CMat w2 = zero_forcing_precoder(s.users, v_rot);
  const double noise = 1e-4;
  EXPECT_NEAR(mean_sinr_db(mu_mimo_sinr(s.users, w1, noise)),
              mean_sinr_db(mu_mimo_sinr(s.users, w2, noise)), 1e-6);
}

TEST(PrecodingTest, ValidatesStreamBudget) {
  std::mt19937_64 rng(19);
  MuMimoSetup s = make_setup(rng, 2, 2);  // 4 streams > 3 TX antennas
  EXPECT_THROW(zero_forcing_precoder(s.users, s.v_exact), std::logic_error);
}

TEST(PrecodingTest, TwoStreamsPlusOne) {
  // 2+1 streams on 3 antennas: exactly fully loaded.
  std::mt19937_64 rng(23);
  MuMimoSetup s = make_setup(rng, 2, 1);
  const CMat w = zero_forcing_precoder(s.users, s.v_exact);
  EXPECT_EQ(w.cols(), 3u);
  const auto sinr = mu_mimo_sinr(s.users, w, 1e-4);
  ASSERT_EQ(sinr.size(), 2u);
  EXPECT_EQ(sinr[0].size(), 2u);
  EXPECT_EQ(sinr[1].size(), 1u);
  for (const auto& u : sinr)
    for (double v : u) EXPECT_GT(v, 1.0);
}

}  // namespace
}  // namespace deepcsi::phy
