// Training loop behavior: optimization progress, validation protocol,
// evaluation, serialization, and the Adam update rule.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <random>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"

namespace deepcsi::nn {
namespace {

// Three well-separated Gaussian blobs in 2-D: easy to overfit, good for
// verifying the plumbing.
LabeledSet make_blobs(int per_class, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 0.35f);
  const float centers[3][2] = {{0, 2}, {2, -1}, {-2, -1}};
  LabeledSet set;
  set.num_classes = 3;
  set.x = Tensor({static_cast<std::size_t>(3 * per_class), 2});
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const std::size_t row = static_cast<std::size_t>(c * per_class + i);
      set.x[row * 2] = centers[c][0] + noise(rng);
      set.x[row * 2 + 1] = centers[c][1] + noise(rng);
      set.y.push_back(c);
    }
  }
  return set;
}

Sequential make_mlp(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Sequential m;
  m.emplace<Dense>(2, 16, rng);
  m.emplace<Selu>();
  m.emplace<Dense>(16, 3, rng);
  return m;
}

TEST(TrainerTest, LearnsSeparableBlobs) {
  Sequential model = make_mlp(1);
  const LabeledSet train = make_blobs(60, 11);
  TrainConfig cfg;
  cfg.epochs = 25;
  cfg.batch_size = 16;
  const TrainResult result = train_classifier(model, train, cfg);
  EXPECT_GT(result.best_val_accuracy, 0.9);

  const LabeledSet test = make_blobs(40, 99);
  EXPECT_GT(evaluate(model, test).accuracy(), 0.9);
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  Sequential model = make_mlp(2);
  const LabeledSet train = make_blobs(50, 13);
  TrainConfig cfg;
  cfg.epochs = 12;
  const TrainResult result = train_classifier(model, train, cfg);
  ASSERT_EQ(result.epochs.size(), 12u);
  EXPECT_LT(result.epochs.back().train_loss,
            result.epochs.front().train_loss * 0.7);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const LabeledSet train = make_blobs(30, 17);
  TrainConfig cfg;
  cfg.epochs = 5;
  Sequential m1 = make_mlp(3), m2 = make_mlp(3);
  const TrainResult r1 = train_classifier(m1, train, cfg);
  const TrainResult r2 = train_classifier(m2, train, cfg);
  for (std::size_t e = 0; e < r1.epochs.size(); ++e)
    EXPECT_DOUBLE_EQ(r1.epochs[e].train_loss, r2.epochs[e].train_loss);
}

TEST(TrainerTest, ValidationTailIsHeldOut) {
  // The validation split takes the *tail* of the provided data. Order the
  // rows so the tail is a class the model never trains on: validation
  // accuracy must collapse to ~0, proving the tail is truly held out.
  LabeledSet train = make_blobs(20, 19);  // rows ordered class 0,1,2
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.val_fraction = 1.0 / 3.0;  // exactly the class-2 block
  cfg.restore_best = false;
  Sequential model = make_mlp(5);
  const TrainResult r = train_classifier(model, train, cfg);
  EXPECT_LT(r.best_val_accuracy, 0.2);
  // Training accuracy on the remaining two classes is unaffected.
  EXPECT_GT(r.epochs.back().train_accuracy, 0.9);
}

TEST(TrainerTest, InterleavedValidationTailScoresHigh) {
  // Round-robin class order puts all classes in the tail: validation
  // accuracy then tracks true generalization.
  const LabeledSet blobs = make_blobs(20, 21);
  LabeledSet interleaved;
  interleaved.num_classes = blobs.num_classes;
  interleaved.x = Tensor(blobs.x.shape());
  const std::size_t per_class = 20;
  std::size_t row = 0;
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      const std::size_t src = c * per_class + i;
      interleaved.x[row * 2] = blobs.x[src * 2];
      interleaved.x[row * 2 + 1] = blobs.x[src * 2 + 1];
      interleaved.y.push_back(blobs.y[src]);
      ++row;
    }
  }
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 16;
  cfg.val_fraction = 0.3;
  Sequential model = make_mlp(5);
  const TrainResult r = train_classifier(model, interleaved, cfg);
  EXPECT_GT(r.best_val_accuracy, 0.9);
}

TEST(TrainerTest, ConfigValidation) {
  Sequential model = make_mlp(6);
  const LabeledSet train = make_blobs(10, 23);
  TrainConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(train_classifier(model, train, cfg), std::logic_error);
  cfg.epochs = 1;
  cfg.val_fraction = 1.0;
  EXPECT_THROW(train_classifier(model, train, cfg), std::logic_error);
  LabeledSet empty;
  cfg.val_fraction = 0.2;
  EXPECT_THROW(train_classifier(model, empty, cfg), std::logic_error);
}

TEST(EvaluateTest, PerfectAndWorstCase) {
  // A frozen model always predicting via huge bias: craft a 1-layer net
  // with zero weights and biased logits toward class 1.
  std::mt19937_64 rng(29);
  Sequential model;
  auto& dense = model.emplace<Dense>(2, 3, rng);
  dense.params()[0]->value.zero();
  dense.params()[1]->value.zero();
  dense.params()[1]->value[1] = 10.0f;

  LabeledSet set;
  set.num_classes = 3;
  set.x = Tensor({6, 2});
  set.y = {1, 1, 1, 0, 0, 2};
  const ConfusionMatrix cm = evaluate(model, set);
  EXPECT_NEAR(cm.accuracy(), 0.5, 1e-12);
  EXPECT_EQ(cm.count(0, 1), 2);
  EXPECT_EQ(cm.count(2, 1), 1);
}

TEST(ConcatTest, StacksRowsAndLabels) {
  const LabeledSet a = make_blobs(5, 31);
  const LabeledSet b = make_blobs(7, 37);
  const LabeledSet c = concat(a, b);
  EXPECT_EQ(c.size(), a.size() + b.size());
  EXPECT_EQ(c.x.dim(0), a.x.dim(0) + b.x.dim(0));
  EXPECT_EQ(c.y[0], a.y[0]);
  EXPECT_EQ(c.y[a.size()], b.y[0]);
  // Feature data preserved.
  EXPECT_EQ(c.x[0], a.x[0]);
  EXPECT_EQ(c.x[a.x.numel()], b.x[0]);
  // Concat with empty is identity.
  EXPECT_EQ(concat(LabeledSet{}, a).size(), a.size());
  EXPECT_EQ(concat(a, LabeledSet{}).size(), a.size());
}

TEST(AdamTest, SingleStepMatchesHandComputation) {
  // One parameter w = 0, grad = 0.5: after one Adam step with lr=0.1,
  // w = -lr * g/ (sqrt(g^2) ) (bias corrections cancel at t=1) = -0.1.
  Param p(Tensor({1}));
  p.value[0] = 0.0f;
  p.grad[0] = 0.5f;
  Adam::Config cfg;
  cfg.lr = 0.1f;
  cfg.eps = 0.0f;
  Adam adam({&p}, cfg);
  adam.step();
  EXPECT_NEAR(p.value[0], -0.1f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by feeding grad = 2(w - 3).
  Param p(Tensor({1}));
  p.value[0] = -5.0f;
  Adam adam({&p}, {.lr = 0.05f});
  for (int i = 0; i < 2000; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

TEST(SgdTest, StepsAgainstGradient) {
  Param p(Tensor({2}));
  p.value[0] = 1.0f;
  p.grad[0] = 2.0f;
  p.grad[1] = -4.0f;
  Sgd sgd({&p}, 0.25f);
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 1.0f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Sequential m1 = make_mlp(41);
  const LabeledSet train = make_blobs(30, 43);
  TrainConfig cfg;
  cfg.epochs = 6;
  train_classifier(m1, train, cfg);

  const std::string path = ::testing::TempDir() + "/deepcsi_weights.bin";
  save_weights(m1, path);

  Sequential m2 = make_mlp(999);  // different init, same architecture
  load_weights(m2, path);

  const LabeledSet test = make_blobs(20, 47);
  const Tensor p1 = m1.forward(test.x, false);
  const Tensor p2 = m2.forward(test.x, false);
  ASSERT_TRUE(p1.same_shape(p2));
  for (std::size_t i = 0; i < p1.numel(); ++i) EXPECT_FLOAT_EQ(p1[i], p2[i]);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Sequential m1 = make_mlp(51);
  const std::string path = ::testing::TempDir() + "/deepcsi_weights2.bin";
  save_weights(m1, path);
  std::mt19937_64 rng(53);
  Sequential wrong;
  wrong.emplace<Dense>(2, 7, rng);  // different architecture
  EXPECT_THROW(load_weights(wrong, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
  Sequential m = make_mlp(55);
  EXPECT_THROW(load_weights(m, "/nonexistent/deepcsi.bin"), std::runtime_error);
}

}  // namespace
}  // namespace deepcsi::nn
