// Device registry and windowed vote authentication.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "dataset/features.h"

namespace deepcsi::core {
namespace {

TEST(DeviceRegistryTest, EnrollLookupRevoke) {
  DeviceRegistry reg;
  const auto mac2 = capture::MacAddress::for_module(2);
  const auto mac5 = capture::MacAddress::for_module(5);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.expected_module(mac2).has_value());

  reg.enroll(mac2, 2);
  reg.enroll(mac5, 5);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.expected_module(mac2).value(), 2);
  EXPECT_EQ(reg.expected_module(mac5).value(), 5);

  reg.enroll(mac2, 7);  // re-enrollment replaces
  EXPECT_EQ(reg.expected_module(mac2).value(), 7);
  EXPECT_EQ(reg.size(), 2u);

  reg.revoke(mac2);
  EXPECT_FALSE(reg.expected_module(mac2).has_value());
  EXPECT_EQ(reg.size(), 1u);
}

class VoteAuthenticatorTest : public ::testing::Test {
 protected:
  VoteAuthenticatorTest() {
    // Train a tiny 2-module classifier on real trace reports.
    const dataset::Scale scale{6, 6, 12};
    dataset::GeneratorConfig gen;
    spec_.subcarrier_stride = 12;
    for (int module : {0, 1})
      traces_.push_back(dataset::generate_d1_trace(module, 1, 0, scale, gen));
    nn::LabeledSet train = dataset::make_labeled_set(traces_, spec_);
    dataset::shuffle_labeled_set(train, 3);

    ExperimentConfig cfg = quick_experiment_config();
    cfg.model.filters = 8;
    cfg.model.conv_layers = 2;
    cfg.model.dense = {16, 8};
    cfg.model.dropout = {0.1f, 0.1f};
    cfg.train.epochs = 40;
    cfg.train.batch_size = 4;
    cfg.train.val_fraction = 0.0;
    dataset::SplitSets split{train, train};
    auth_ = std::make_unique<Authenticator>(
        train_authenticator(split, spec_, cfg));

    registry_.enroll(capture::MacAddress::for_module(0), 0);
    registry_.enroll(capture::MacAddress::for_module(1), 1);
  }

  capture::ObservedFeedback observe_from(int hardware_module,
                                         int claimed_module,
                                         std::size_t snap) const {
    capture::ObservedFeedback obs;
    obs.timestamp_s = static_cast<double>(snap);
    obs.beamformee = capture::MacAddress::for_station(0);
    obs.beamformer = capture::MacAddress::for_module(claimed_module);
    obs.report =
        traces_[static_cast<std::size_t>(hardware_module)].snapshots[snap].report;
    return obs;
  }

  dataset::InputSpec spec_;
  std::vector<dataset::Trace> traces_;
  std::unique_ptr<Authenticator> auth_;
  DeviceRegistry registry_;
};

TEST_F(VoteAuthenticatorTest, AuthenticDeviceAccepted) {
  VoteAuthenticator votes(*auth_, registry_, 5);
  VoteAuthenticator::Verdict verdict = VoteAuthenticator::Verdict::kUndecided;
  for (std::size_t s = 0; s < 6; ++s)
    verdict = votes.observe(observe_from(0, 0, s));
  EXPECT_EQ(verdict, VoteAuthenticator::Verdict::kAuthentic);
  const auto vote = votes.current_vote(capture::MacAddress::for_module(0));
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->first, 0);
  EXPECT_GT(vote->second, 0.5);
}

TEST_F(VoteAuthenticatorTest, SpoofedMacFlagged) {
  VoteAuthenticator votes(*auth_, registry_, 5);
  // Module 1's hardware claims module 0's MAC.
  VoteAuthenticator::Verdict verdict = VoteAuthenticator::Verdict::kUndecided;
  for (std::size_t s = 0; s < 6; ++s)
    verdict = votes.observe(observe_from(1, 0, s));
  EXPECT_EQ(verdict, VoteAuthenticator::Verdict::kSpoofed);
  EXPECT_GT(votes.counts().spoofed, 0);
}

TEST_F(VoteAuthenticatorTest, UnknownMacReported) {
  VoteAuthenticator votes(*auth_, registry_, 5);
  const auto verdict = votes.observe(observe_from(0, 9, 0));
  EXPECT_EQ(verdict, VoteAuthenticator::Verdict::kUnknownDevice);
  EXPECT_EQ(votes.counts().unknown, 1);
}

TEST_F(VoteAuthenticatorTest, UndecidedUntilWindowWarm) {
  VoteAuthenticator votes(*auth_, registry_, 5);
  EXPECT_EQ(votes.observe(observe_from(0, 0, 0)),
            VoteAuthenticator::Verdict::kUndecided);
  EXPECT_EQ(votes.observe(observe_from(0, 0, 1)),
            VoteAuthenticator::Verdict::kUndecided);
  EXPECT_NE(votes.observe(observe_from(0, 0, 2)),
            VoteAuthenticator::Verdict::kUndecided);
}

TEST_F(VoteAuthenticatorTest, WindowSlides) {
  VoteAuthenticator votes(*auth_, registry_, 3);
  // Warm with authentic frames, then flood with spoofed ones: the window
  // must forget the old evidence.
  for (std::size_t s = 0; s < 3; ++s) votes.observe(observe_from(0, 0, s));
  VoteAuthenticator::Verdict verdict = VoteAuthenticator::Verdict::kUndecided;
  for (std::size_t s = 0; s < 4; ++s)
    verdict = votes.observe(observe_from(1, 0, s));
  EXPECT_EQ(verdict, VoteAuthenticator::Verdict::kSpoofed);
}

}  // namespace
}  // namespace deepcsi::core
