// The register-blocked GEMM micro-kernels against a naive
// ascending-k reference, bitwise: blocking, k-tiling and B-packing must
// move data without ever reassociating a sum, and the result must not
// depend on DEEPCSI_THREADS. Shapes deliberately include row counts that
// are not multiples of the 4-row block and odd n / k.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/parallel.h"
#include "nn/gemm.h"
#include "test_util.h"

namespace deepcsi::nn {
namespace {

using tests::ThreadGuard;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  return v;
}

// C_s (+)= A * B_s, plain triple loop, ascending k, one add per k — the
// accumulation order the kernels contract to reproduce exactly.
void naive_nn(std::size_t batch, std::size_t m, std::size_t n, std::size_t k,
              const float* a, const float* b, std::size_t b_stride, float* c,
              std::size_t c_stride, bool accumulate) {
  for (std::size_t s = 0; s < batch; ++s)
    for (std::size_t i = 0; i < m; ++i) {
      float* row = c + s * c_stride + i * n;
      if (!accumulate)
        for (std::size_t j = 0; j < n; ++j) row[j] = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a[i * k + kk];
        for (std::size_t j = 0; j < n; ++j)
          row[j] += av * b[s * b_stride + kk * n + j];
      }
    }
}

void naive_tn(std::size_t batch, std::size_t m, std::size_t n, std::size_t k,
              const float* a, const float* b, std::size_t b_stride, float* c,
              std::size_t c_stride, bool accumulate) {
  for (std::size_t s = 0; s < batch; ++s)
    for (std::size_t i = 0; i < m; ++i) {
      float* row = c + s * c_stride + i * n;
      if (!accumulate)
        for (std::size_t j = 0; j < n; ++j) row[j] = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a[kk * m + i];
        for (std::size_t j = 0; j < n; ++j)
          row[j] += av * b[s * b_stride + kk * n + j];
      }
    }
}

struct Shape {
  std::size_t batch, m, n, k;
};

// Sizes straddle every kernel edge: m % 4 != 0 tails, n past the packed
// stride padding, k beyond one 128-row tile, batch folding.
const Shape kShapes[] = {
    {1, 1, 1, 1},   {1, 3, 5, 7},    {1, 4, 8, 16},   {2, 5, 9, 3},
    {3, 7, 33, 129}, {1, 16, 234, 45}, {4, 6, 17, 200}, {2, 13, 31, 257},
};

TEST(GemmBlockedTest, NnMatchesNaiveBitwiseAcrossThreadCounts) {
  ThreadGuard guard;
  for (const Shape& sh : kShapes) {
    const auto a = random_vec(sh.m * sh.k, 11 + sh.k);
    const auto b = random_vec(sh.batch * sh.k * sh.n, 13 + sh.n);
    for (const bool accumulate : {false, true}) {
      auto expected = random_vec(sh.batch * sh.m * sh.n, 17);
      naive_nn(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(), sh.k * sh.n,
               expected.data(), sh.m * sh.n, accumulate);
      for (const int threads : {1, 4}) {
        common::set_num_threads(threads);
        auto c = random_vec(sh.batch * sh.m * sh.n, 17);  // same garbage
        gemm_nn_batched(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(),
                        sh.k * sh.n, c.data(), sh.m * sh.n, accumulate);
        for (std::size_t e = 0; e < c.size(); ++e)
          ASSERT_EQ(c[e], expected[e])
              << "batch=" << sh.batch << " m=" << sh.m << " n=" << sh.n
              << " k=" << sh.k << " acc=" << accumulate
              << " threads=" << threads << " elem=" << e;
      }
    }
  }
}

TEST(GemmBlockedTest, TnMatchesNaiveBitwiseAcrossThreadCounts) {
  ThreadGuard guard;
  for (const Shape& sh : kShapes) {
    const auto a = random_vec(sh.k * sh.m, 19 + sh.k);
    const auto b = random_vec(sh.batch * sh.k * sh.n, 23 + sh.n);
    for (const bool accumulate : {false, true}) {
      auto expected = random_vec(sh.batch * sh.m * sh.n, 29);
      naive_tn(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(), sh.k * sh.n,
               expected.data(), sh.m * sh.n, accumulate);
      for (const int threads : {1, 4}) {
        common::set_num_threads(threads);
        auto c = random_vec(sh.batch * sh.m * sh.n, 29);
        gemm_tn_batched(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(),
                        sh.k * sh.n, c.data(), sh.m * sh.n, accumulate);
        for (std::size_t e = 0; e < c.size(); ++e)
          ASSERT_EQ(c[e], expected[e])
              << "batch=" << sh.batch << " m=" << sh.m << " n=" << sh.n
              << " k=" << sh.k << " acc=" << accumulate
              << " threads=" << threads << " elem=" << e;
      }
    }
  }
}

TEST(GemmBlockedTest, ExactZerosInAContributeLikeAnyOtherValue) {
  // The old kernels skipped a_ik == 0 entirely; the blocked kernels must
  // not, and the naive reference (which never skips) pins the semantics.
  ThreadGuard guard;
  common::set_num_threads(1);
  const std::size_t m = 6, n = 9, k = 140;
  auto a = random_vec(m * k, 31);
  for (std::size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
  const auto b = random_vec(k * n, 37);
  std::vector<float> expected(m * n), c(m * n);
  naive_nn(1, m, n, k, a.data(), b.data(), 0, expected.data(), 0, false);
  gemm_nn_batched(1, m, n, k, a.data(), b.data(), 0, c.data(), 0, false);
  for (std::size_t e = 0; e < c.size(); ++e) ASSERT_EQ(c[e], expected[e]);
}

TEST(GemmBlockedTest, NtVariantsStayConsistentWithNaive) {
  // gemm_nt / gemm_nt_batch_reduce use 4-lane dot products (they do
  // reassociate), so they get a tolerance, not bitwise equality.
  ThreadGuard guard;
  common::set_num_threads(4);
  const std::size_t batch = 3, m = 5, n = 7, k = 61;
  const auto a = random_vec(batch * m * k, 41);
  const auto b = random_vec(batch * n * k, 43);
  std::vector<float> c(m * n, 0.0f);
  gemm_nt(m, n, k, a.data(), b.data(), c.data(), false);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk)
        ref += static_cast<double>(a[i * k + kk]) * b[j * k + kk];
      EXPECT_NEAR(c[i * n + j], ref, 1e-4);
    }
  std::vector<float> cr(m * n, 0.0f);
  gemm_nt_batch_reduce(batch, m, n, k, a.data(), m * k, b.data(), n * k,
                       cr.data(), false);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::size_t s = 0; s < batch; ++s)
        for (std::size_t kk = 0; kk < k; ++kk)
          ref += static_cast<double>(a[s * m * k + i * k + kk]) *
                 b[s * n * k + j * k + kk];
      EXPECT_NEAR(cr[i * n + j], ref, 1e-3);
    }
}

}  // namespace
}  // namespace deepcsi::nn
