// The register-blocked GEMM micro-kernels against a naive ascending-k
// reference, under every available SIMD backend. The scalar backend must
// match the reference bitwise (blocking, k-tiling and B-packing move
// data without ever reassociating a sum); the avx2 backend reassociates
// only through FMA rounding, so it gets a tolerance against the
// reference — but must still be bitwise self-identical across
// DEEPCSI_THREADS (the per-backend determinism contract). Shapes
// deliberately include row counts that are not multiples of the row
// block and odd n / k.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "common/parallel.h"
#include "nn/gemm.h"
#include "nn/simd.h"
#include "test_util.h"

namespace deepcsi::nn {
namespace {

using tests::available_backends;
using tests::BackendGuard;
using tests::ThreadGuard;

// Bitwise for scalar; FMA-rounding tolerance for avx2.
void expect_matches_reference(simd::Backend backend, float got, float want,
                              const char* what, std::size_t elem) {
  if (backend == simd::Backend::kScalar) {
    ASSERT_EQ(got, want) << what << " backend=scalar elem=" << elem;
  } else {
    ASSERT_NEAR(got, want, 5e-4 * (1.0 + std::abs(want)))
        << what << " backend=" << simd::name(backend) << " elem=" << elem;
  }
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  return v;
}

// C_s (+)= A * B_s, plain triple loop, ascending k, one add per k — the
// accumulation order the kernels contract to reproduce exactly.
void naive_nn(std::size_t batch, std::size_t m, std::size_t n, std::size_t k,
              const float* a, const float* b, std::size_t b_stride, float* c,
              std::size_t c_stride, bool accumulate) {
  for (std::size_t s = 0; s < batch; ++s)
    for (std::size_t i = 0; i < m; ++i) {
      float* row = c + s * c_stride + i * n;
      if (!accumulate)
        for (std::size_t j = 0; j < n; ++j) row[j] = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a[i * k + kk];
        for (std::size_t j = 0; j < n; ++j)
          row[j] += av * b[s * b_stride + kk * n + j];
      }
    }
}

void naive_tn(std::size_t batch, std::size_t m, std::size_t n, std::size_t k,
              const float* a, const float* b, std::size_t b_stride, float* c,
              std::size_t c_stride, bool accumulate) {
  for (std::size_t s = 0; s < batch; ++s)
    for (std::size_t i = 0; i < m; ++i) {
      float* row = c + s * c_stride + i * n;
      if (!accumulate)
        for (std::size_t j = 0; j < n; ++j) row[j] = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a[kk * m + i];
        for (std::size_t j = 0; j < n; ++j)
          row[j] += av * b[s * b_stride + kk * n + j];
      }
    }
}

struct Shape {
  std::size_t batch, m, n, k;
};

// Sizes straddle every kernel edge: m % 4 != 0 tails, n past the packed
// stride padding, k beyond one kKTile-deep (64) tile, batch folding.
const Shape kShapes[] = {
    {1, 1, 1, 1},   {1, 3, 5, 7},    {1, 4, 8, 16},   {2, 5, 9, 3},
    {3, 7, 33, 129}, {1, 16, 234, 45}, {4, 6, 17, 200}, {2, 13, 31, 257},
};

TEST(GemmBlockedTest, NnMatchesNaiveAndIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  BackendGuard backend_guard;
  for (const simd::Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    for (const Shape& sh : kShapes) {
      const auto a = random_vec(sh.m * sh.k, 11 + sh.k);
      const auto b = random_vec(sh.batch * sh.k * sh.n, 13 + sh.n);
      for (const bool accumulate : {false, true}) {
        auto expected = random_vec(sh.batch * sh.m * sh.n, 17);
        naive_nn(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(), sh.k * sh.n,
                 expected.data(), sh.m * sh.n, accumulate);
        std::vector<float> one_thread;
        for (const int threads : {1, 4}) {
          common::set_num_threads(threads);
          auto c = random_vec(sh.batch * sh.m * sh.n, 17);  // same garbage
          gemm_nn_batched(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(),
                          sh.k * sh.n, c.data(), sh.m * sh.n, accumulate);
          for (std::size_t e = 0; e < c.size(); ++e)
            expect_matches_reference(backend, c[e], expected[e], "nn", e);
          if (threads == 1) {
            one_thread = c;
          } else {
            for (std::size_t e = 0; e < c.size(); ++e)
              ASSERT_EQ(c[e], one_thread[e])
                  << "nn thread-count bit-identity backend="
                  << simd::name(backend) << " m=" << sh.m << " n=" << sh.n
                  << " k=" << sh.k << " elem=" << e;
          }
        }
      }
    }
  }
}

TEST(GemmBlockedTest, TnMatchesNaiveAndIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  BackendGuard backend_guard;
  for (const simd::Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    for (const Shape& sh : kShapes) {
      const auto a = random_vec(sh.k * sh.m, 19 + sh.k);
      const auto b = random_vec(sh.batch * sh.k * sh.n, 23 + sh.n);
      for (const bool accumulate : {false, true}) {
        auto expected = random_vec(sh.batch * sh.m * sh.n, 29);
        naive_tn(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(), sh.k * sh.n,
                 expected.data(), sh.m * sh.n, accumulate);
        std::vector<float> one_thread;
        for (const int threads : {1, 4}) {
          common::set_num_threads(threads);
          auto c = random_vec(sh.batch * sh.m * sh.n, 29);
          gemm_tn_batched(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(),
                          sh.k * sh.n, c.data(), sh.m * sh.n, accumulate);
          for (std::size_t e = 0; e < c.size(); ++e)
            expect_matches_reference(backend, c[e], expected[e], "tn", e);
          if (threads == 1) {
            one_thread = c;
          } else {
            for (std::size_t e = 0; e < c.size(); ++e)
              ASSERT_EQ(c[e], one_thread[e])
                  << "tn thread-count bit-identity backend="
                  << simd::name(backend) << " m=" << sh.m << " n=" << sh.n
                  << " k=" << sh.k << " elem=" << e;
          }
        }
      }
    }
  }
}

TEST(GemmBlockedTest, ExactZerosInAContributeLikeAnyOtherValue) {
  // The old kernels skipped a_ik == 0 entirely; the blocked kernels must
  // not, and the naive reference (which never skips) pins the semantics
  // under every backend.
  ThreadGuard guard;
  BackendGuard backend_guard;
  common::set_num_threads(1);
  const std::size_t m = 6, n = 9, k = 140;
  auto a = random_vec(m * k, 31);
  for (std::size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
  const auto b = random_vec(k * n, 37);
  std::vector<float> expected(m * n);
  naive_nn(1, m, n, k, a.data(), b.data(), 0, expected.data(), 0, false);
  for (const simd::Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    std::vector<float> c(m * n);
    gemm_nn_batched(1, m, n, k, a.data(), b.data(), 0, c.data(), 0, false);
    for (std::size_t e = 0; e < c.size(); ++e)
      expect_matches_reference(backend, c[e], expected[e], "zeros", e);
  }
}

TEST(GemmBlockedTest, FusedRowEpilogueMatchesSeparateApplication) {
  // gemm + epilogue(selu) must equal gemm then selu over the output —
  // the contract the fused conv->bias->SELU serve path stands on — under
  // every backend and thread count.
  ThreadGuard guard;
  BackendGuard backend_guard;
  const std::size_t batch = 2, m = 6, n = 29, k = 70;
  const auto a = random_vec(m * k, 61);
  const auto b = random_vec(batch * k * n, 67);
  for (const simd::Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    const simd::SimdOps& ops = simd::ops();
    for (const int threads : {1, 4}) {
      common::set_num_threads(threads);
      std::vector<float> unfused(batch * m * n, 0.25f);
      gemm_nn_batched(batch, m, n, k, a.data(), b.data(), k * n,
                      unfused.data(), m * n, /*accumulate=*/true);
      ops.selu(unfused.data(), unfused.data(), unfused.size());
      std::vector<float> fused(batch * m * n, 0.25f);
      gemm_nn_batched(batch, m, n, k, a.data(), b.data(), k * n, fused.data(),
                      m * n, /*accumulate=*/true, ops.selu);
      for (std::size_t e = 0; e < fused.size(); ++e)
        ASSERT_EQ(fused[e], unfused[e])
            << simd::name(backend) << " threads=" << threads << " elem=" << e;
    }
  }
}

TEST(GemmBlockedTest, NtVariantsStayConsistentWithNaive) {
  // gemm_nt / gemm_nt_batch_reduce use fixed-lane dot products (they do
  // reassociate), so they get a tolerance, not bitwise equality — under
  // every backend.
  ThreadGuard guard;
  BackendGuard backend_guard;
  common::set_num_threads(4);
  const std::size_t batch = 3, m = 5, n = 7, k = 61;
  const auto a = random_vec(batch * m * k, 41);
  const auto b = random_vec(batch * n * k, 43);
  for (const simd::Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    std::vector<float> c(m * n, 0.0f);
    gemm_nt(m, n, k, a.data(), b.data(), c.data(), false);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double ref = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk)
          ref += static_cast<double>(a[i * k + kk]) * b[j * k + kk];
        EXPECT_NEAR(c[i * n + j], ref, 1e-4) << simd::name(backend);
      }
    std::vector<float> cr(m * n, 0.0f);
    gemm_nt_batch_reduce(batch, m, n, k, a.data(), m * k, b.data(), n * k,
                         cr.data(), false);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double ref = 0.0;
        for (std::size_t s = 0; s < batch; ++s)
          for (std::size_t kk = 0; kk < k; ++kk)
            ref += static_cast<double>(a[s * m * k + i * k + kk]) *
                   b[s * n * k + j * k + kk];
        EXPECT_NEAR(cr[i * n + j], ref, 1e-3) << simd::name(backend);
      }
  }
}

}  // namespace
}  // namespace deepcsi::nn
