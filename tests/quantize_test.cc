// The INT8 quantized inference path (nn/quantize.h + the int8 SimdOps
// kernels + the arena-staged layer paths):
//
//   1. Per-channel weight quantization honors its analytic bounds —
//      round-trip error within half a scale step, saturating casts pin
//      the ±31 / ±127 edges, all-zero rows degrade to exact bias.
//   2. The calibration sidecar round-trips through save/load and
//      REFUSES corrupt bytes (CRC), truncation, and foreign magic —
//      missing stays a soft nullopt.
//   3. int8 GEMM vs fp32 agreement within the calibrated tolerance on
//      randomized shapes.
//   4. The avx2_int8 kernels are BIT-IDENTICAL to the int8ref scalar
//      reference (all integer math exact; same rounding sequence) — a
//      stronger contract than the fp32 kernels' tolerance agreement.
//   5. A calibrated model under DEEPCSI_SIMD=avx2_int8 actually runs
//      the int8 drivers (honesty counter moves), stays bit-identical
//      across thread counts, and an UNCALIBRATED model under avx2_int8
//      is bit-identical to plain avx2 (graceful degradation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/model.h"
#include "dataset/features.h"
#include "nn/gemm.h"
#include "nn/infer.h"
#include "nn/quantize.h"
#include "nn/serialize.h"
#include "nn/simd.h"
#include "test_util.h"

namespace deepcsi {
namespace {

using simd::Backend;
using tests::BackendGuard;
using tests::ThreadGuard;

bool avx2_available() {
  return simd::compiled_with_avx2() && simd::cpu_supports_avx2();
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                              float scale = 1.0f) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, scale);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  return v;
}

// --------------------------------------------------- weight quantization

TEST(QuantizeWeightsTest, RoundTripErrorWithinHalfAScaleStep) {
  for (const auto [rows, k] : {std::pair<std::size_t, std::size_t>{1, 1},
                               {3, 7},
                               {32, 63},
                               {17, 449},
                               {128, 896}}) {
    const std::vector<float> w = random_vec(rows * k, 7 * rows + k);
    const nn::QuantizedWeights q = nn::quantize_weights(w.data(), rows, k, 2.5f);
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.ko, (k + 7) / 8);
    for (std::size_t r = 0; r < rows; ++r) {
      float absmax = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk)
        absmax = std::max(absmax, std::fabs(w[r * k + kk]));
      const float w_scale = absmax / 31.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float back = static_cast<float>(q.wq[r * 8 * q.ko + kk]) * w_scale;
        EXPECT_LE(std::fabs(back - w[r * k + kk]),
                  w_scale * 0.5f * (1.0f + 1e-5f))
            << "rows=" << rows << " k=" << k << " r=" << r << " kk=" << kk;
      }
      // Padding beyond k must be exactly zero (the kernels reduce over
      // the padded octs).
      for (std::size_t kk = k; kk < 8 * q.ko; ++kk)
        EXPECT_EQ(q.wq[r * 8 * q.ko + kk], 0);
    }
  }
}

TEST(QuantizeWeightsTest, SaturatingCastEdges) {
  // The row absmax itself must land exactly on ±31, and the zero-point
  // correction must be 128 * sum(wq).
  const float w[] = {1.0f, -1.0f, 0.5f, 0.0f};
  const nn::QuantizedWeights q = nn::quantize_weights(w, 1, 4, 1.0f);
  EXPECT_EQ(q.wq[0], 31);
  EXPECT_EQ(q.wq[1], -31);
  EXPECT_EQ(q.wq[2], 16);  // rne(0.5 * 31) = rne(15.5) = 16
  EXPECT_EQ(q.wq[3], 0);
  EXPECT_EQ(q.corr[0], 128 * (31 - 31 + 16 + 0));

  // u8 activation quantization: clamp at ±127, zero maps to the 128
  // zero-point byte (== the conv padding byte).
  const float x[] = {0.0f, 10.0f, -10.0f, 1.0f, -1.0f, 0.9999f};
  std::uint8_t out[6];
  simd::int8ref::quantize_u8(x, 6, 127.0f, out);  // act_scale = 1/127
  EXPECT_EQ(out[0], 128);
  EXPECT_EQ(out[1], 255);  // clamped +127
  EXPECT_EQ(out[2], 1);    // clamped -127
  EXPECT_EQ(out[3], 255);
  EXPECT_EQ(out[4], 1);
  EXPECT_EQ(out[5], 255);  // rne(126.99) = 127
}

TEST(QuantizeWeightsTest, ZeroRowYieldsExactBias) {
  // An all-zero weight row must produce output == bias exactly, not
  // bias + 0-times-garbage.
  std::vector<float> w(2 * 8, 0.0f);
  for (std::size_t kk = 0; kk < 8; ++kk) w[8 + kk] = 0.25f * (kk + 1);
  const nn::QuantizedWeights q = nn::quantize_weights(w.data(), 2, 8, 3.0f);
  EXPECT_EQ(q.dequant[0], 0.0f);
  EXPECT_EQ(q.corr[0], 0);

  const std::vector<float> x = random_vec(3 * 8, 99, 2.0f);
  std::vector<std::uint8_t> xq(3 * 8 * q.ko);
  const float bias[] = {1.5f, -0.75f};
  std::vector<float> out(3 * 2);
  nn::dense_s8u8(3, 8, q, x.data(), xq.data(), bias, out.data());
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(out[s * 2], 1.5f);
}

// ----------------------------------------------------- sidecar round-trip

class TempCalibFile {
 public:
  TempCalibFile() {
    std::snprintf(path_, sizeof(path_), "/tmp/deepcsi_quantize_test_%d.bin",
                  static_cast<int>(::getpid()));
  }
  ~TempCalibFile() {
    std::remove(path_);
    std::remove((std::string(path_) + ".calib").c_str());
  }
  const char* weights_path() const { return path_; }
  std::string calib_path() const { return std::string(path_) + ".calib"; }

 private:
  char path_[128];
};

TEST(CalibrationSidecarTest, SaveLoadRoundTrip) {
  TempCalibFile tmp;
  const std::vector<nn::CalibrationEntry> entries = {
      {0, 1.5f}, {3, 0.25f}, {7, 1234.5f}};
  nn::save_calibration(tmp.weights_path(), entries);
  const auto loaded = nn::load_calibration(tmp.weights_path());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*loaded)[i].layer_index, entries[i].layer_index);
    EXPECT_EQ((*loaded)[i].input_absmax, entries[i].input_absmax);
  }
}

TEST(CalibrationSidecarTest, MissingSidecarIsSoftNullopt) {
  TempCalibFile tmp;
  EXPECT_FALSE(nn::load_calibration(tmp.weights_path()).has_value());
}

TEST(CalibrationSidecarTest, RefusesCorruptTruncatedAndForeignFiles) {
  TempCalibFile tmp;
  nn::save_calibration(tmp.weights_path(), {{0, 1.0f}, {2, 2.0f}});
  const std::string path = tmp.calib_path();

  // Flip one payload byte: CRC must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 13, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 13, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
    EXPECT_THROW(nn::load_calibration(tmp.weights_path()), std::runtime_error);
  }
  // Truncate: parse must refuse, not read garbage.
  nn::save_calibration(tmp.weights_path(), {{0, 1.0f}, {2, 2.0f}});
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<unsigned char> bytes(64);
    const std::size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    std::fwrite(bytes.data(), 1, n - 5, f);
    std::fclose(f);
    EXPECT_THROW(nn::load_calibration(tmp.weights_path()), std::runtime_error);
  }
  // Foreign magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("DCSWxxxxxxxxxxxx", 1, 16, f);
    std::fclose(f);
    EXPECT_THROW(nn::load_calibration(tmp.weights_path()), std::runtime_error);
  }
}

// ------------------------------------------------ int8 vs fp32 tolerance

TEST(Int8GemmTest, DenseAgreesWithFp32WithinCalibratedTolerance) {
  std::mt19937_64 rng(42);
  for (const auto [n_batch, rows, k] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 4},
        {2, 5, 31},
        {7, 32, 64},
        {3, 17, 449}}) {
    const std::vector<float> w = random_vec(rows * k, 100 + k);
    const std::vector<float> x = random_vec(n_batch * k, 200 + k, 2.0f);
    const std::vector<float> bias = random_vec(rows, 300 + k);
    float xmax = 0.0f;
    for (float v : x) xmax = std::max(xmax, std::fabs(v));
    const nn::QuantizedWeights q =
        nn::quantize_weights(w.data(), rows, k, xmax);
    const float act_scale = xmax / 127.0f;

    std::vector<std::uint8_t> xq(n_batch * 8 * q.ko);
    std::vector<float> got(n_batch * rows);
    nn::dense_s8u8(n_batch, k, q, x.data(), xq.data(), bias.data(),
                   got.data());

    for (std::size_t s = 0; s < n_batch; ++s) {
      for (std::size_t r = 0; r < rows; ++r) {
        double want = bias[r];
        float absmax = 0.0f, wmax = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) {
          want += static_cast<double>(w[r * k + kk]) * x[s * k + kk];
          absmax = std::max(absmax, std::fabs(w[r * k + kk]));
          wmax = std::max(wmax, std::fabs(w[r * k + kk]));
        }
        const float w_scale = absmax / 31.0f;
        // Each term errs by at most |w|*dx + |x|*dw + dw*dx with
        // dx = act_scale/2, dw = w_scale/2; sum over k with slack.
        const double tol =
            k * (wmax * act_scale / 2.0 + xmax * w_scale / 2.0 +
                 act_scale * w_scale / 4.0) *
                1.05 +
            1e-4;
        EXPECT_NEAR(got[s * rows + r], want, tol)
            << "n_batch=" << n_batch << " rows=" << rows << " k=" << k;
      }
    }
  }
}

// --------------------------------------- avx2_int8 kernel bit-identity

TEST(Int8KernelTest, Avx2KernelsBitIdenticalToScalarReference) {
  if (!avx2_available()) GTEST_SKIP() << "avx2_int8 backend unavailable";
  BackendGuard guard;
  ASSERT_TRUE(simd::set_active(Backend::kAvx2Int8));
  const simd::SimdOps& ops = simd::ops();
  ASSERT_EQ(ops.id, Backend::kAvx2Int8);

  // quantize_u8: sizes straddling the 32-wide vector steps, including
  // values at and beyond the clamp edges.
  for (const std::size_t n : {std::size_t{1}, std::size_t{31}, std::size_t{32},
                              std::size_t{33}, std::size_t{200}}) {
    std::vector<float> x = random_vec(n, 1000 + n, 3.0f);
    if (n > 2) {
      x[0] = 1e9f;
      x[1] = -1e9f;
      x[2] = 0.0f;
    }
    std::vector<std::uint8_t> ref(n), got(n);
    simd::int8ref::quantize_u8(x.data(), n, 37.5f, ref.data());
    ops.quantize_u8(x.data(), n, 37.5f, got.data());
    EXPECT_EQ(std::memcmp(ref.data(), got.data(), n), 0) << "n=" << n;
  }

  // dot_s8u8: k multiples of 4 straddling the 32/64-byte steps. Weights
  // stay in the contract's [-31, 31] band — that is what makes the
  // kernels' i16 folding saturation-free and the comparison meaningful.
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<int> wd(-31, 31), xd(1, 255);
  for (const std::size_t k :
       {std::size_t{4}, std::size_t{28}, std::size_t{32}, std::size_t{36},
        std::size_t{64}, std::size_t{68}, std::size_t{448}}) {
    std::vector<std::int8_t> w(k);
    std::vector<std::uint8_t> x(k);
    for (auto& v : w) v = static_cast<std::int8_t>(wd(rng));
    for (auto& v : x) v = static_cast<std::uint8_t>(xd(rng));
    EXPECT_EQ(simd::int8ref::dot_s8u8(w.data(), x.data(), k),
              ops.dot_s8u8(w.data(), x.data(), k))
        << "k=" << k;
  }

  // gemm_s8u8: shapes straddling the 8-wide column tiles (full, masked
  // remainder, single column), the 4-row blocks, and odd/even oct
  // counts. Outputs must be byte-identical. The panel follows the
  // oct-packed contract: np column units per oct, pad columns zero.
  for (const auto [nrows, n, ko] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 1},
        {4, 16, 3},
        {5, 17, 7},
        {2, 14, 5},
        {3, 40, 16},
        {9, 100, 29}}) {
    const std::size_t lda = 8 * ko;
    const std::size_t np = (n + 7) & ~std::size_t{7};
    std::vector<std::int8_t> a(nrows * lda);
    std::vector<std::uint8_t> bq(ko * np * 8, 0);
    for (auto& v : a) v = static_cast<std::int8_t>(wd(rng));
    for (std::size_t o = 0; o < ko; ++o)
      for (std::size_t j = 0; j < n; ++j)  // pad columns j >= n stay 0
        for (std::size_t t = 0; t < 8; ++t)
          bq[(o * np + j) * 8 + t] = static_cast<std::uint8_t>(xd(rng));
    std::vector<std::int32_t> corr(nrows);
    std::vector<float> dequant(nrows), bias(nrows);
    for (std::size_t r = 0; r < nrows; ++r) {
      std::int32_t sum = 0;
      for (std::size_t kk = 0; kk < lda; ++kk) sum += a[r * lda + kk];
      corr[r] = 128 * sum;
      dequant[r] = 0.001f * static_cast<float>(r + 1);
      bias[r] = 0.1f * static_cast<float>(r) - 0.2f;
    }
    std::vector<float> ref(nrows * n), got(nrows * n);
    simd::int8ref::gemm_s8u8(nrows, n, ko, a.data(), lda, bq.data(),
                             corr.data(), dequant.data(), bias.data(),
                             ref.data(), n);
    ops.gemm_s8u8(nrows, n, ko, a.data(), lda, bq.data(), corr.data(),
                  dequant.data(), bias.data(), got.data(), n);
    EXPECT_EQ(std::memcmp(ref.data(), got.data(), nrows * n * sizeof(float)),
              0)
        << "nrows=" << nrows << " n=" << n << " ko=" << ko;
  }
}

// ------------------------------------- direct width-conv pack equality

// conv_s8u8_batched_w promises byte-identical panels (and therefore
// bit-identical outputs) to the reference route quantize -> u8 im2col ->
// conv_s8u8_batched. Pin it on shapes that exercise every code path:
// widths below the 16-column SIMD chunk (all-scalar pack), the paper
// model's 117-wide / kw=7 geometry, k not a multiple of 8 (partial final
// oct), and kw=1 (no padding taps at all).
TEST(Int8ConvTest, WidthConvPackBitIdenticalToIm2colRoute) {
  std::mt19937_64 rng(555);
  std::uniform_int_distribution<int> xd(1, 255);
  for (const auto [batch, cin, ww, kw, rows] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                   std::size_t>{2, 3, 12, 5, 4},
        {3, 4, 117, 7, 16},
        {1, 5, 33, 3, 2},
        {2, 2, 64, 1, 3},
        {1, 1, 16, 9, 1}}) {
    const std::size_t k = cin * kw;
    const std::size_t pad_w = (kw - 1) / 2;
    const std::vector<float> w = random_vec(rows * k, 17 * ww + kw);
    const nn::QuantizedWeights q = nn::quantize_weights(w.data(), rows, k, 2.0f);
    const std::vector<float> bias = random_vec(rows, ww + 41);

    // Random quantized input planes [batch][cin][ww].
    std::vector<std::uint8_t> xq(batch * cin * ww);
    for (auto& v : xq) v = static_cast<std::uint8_t>(xd(rng));

    // Reference route: materialized u8 im2col (pad byte 128) + the
    // generic driver.
    std::vector<std::uint8_t> cols(batch * k * ww);
    for (std::size_t s = 0; s < batch; ++s)
      for (std::size_t kk = 0; kk < k; ++kk)
        for (std::size_t j = 0; j < ww; ++j) {
          const std::ptrdiff_t x = static_cast<std::ptrdiff_t>(j + kk % kw) -
                                   static_cast<std::ptrdiff_t>(pad_w);
          cols[(s * k + kk) * ww + j] =
              (x >= 0 && x < static_cast<std::ptrdiff_t>(ww))
                  ? xq[(s * cin + kk / kw) * ww + static_cast<std::size_t>(x)]
                  : std::uint8_t{128};
        }

    const std::size_t np = (ww + 7) & ~std::size_t{7};
    const std::size_t panel_bytes = batch * 8 * q.ko * np;
    std::vector<std::uint8_t> panel_ref(panel_bytes, 0xAA);
    std::vector<std::uint8_t> panel_got(panel_bytes, 0x55);
    std::vector<float> c_ref(batch * rows * ww), c_got(batch * rows * ww);
    nn::conv_s8u8_batched(batch, ww, q, cols.data(), panel_ref.data(),
                          bias.data(), c_ref.data(), rows * ww,
                          simd::ops().selu);
    nn::conv_s8u8_batched_w(batch, cin, ww, kw, pad_w, q, xq.data(),
                            panel_got.data(), bias.data(), c_got.data(),
                            rows * ww, simd::ops().selu);
    EXPECT_EQ(std::memcmp(panel_ref.data(), panel_got.data(), panel_bytes), 0)
        << "cin=" << cin << " ww=" << ww << " kw=" << kw;
    EXPECT_EQ(std::memcmp(c_ref.data(), c_got.data(),
                          c_ref.size() * sizeof(float)),
              0)
        << "cin=" << cin << " ww=" << ww << " kw=" << kw;
  }
}

// --------------------------------------------- whole-model int8 serving

dataset::InputSpec test_spec() {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  return spec;
}

nn::Sequential build_test_model(const dataset::InputSpec& spec) {
  return core::build_deepcsi_model(
      dataset::num_input_channels(spec),
      static_cast<int>(dataset::num_input_columns(spec)), 10,
      core::quick_model_config());
}

nn::Tensor random_input(const dataset::InputSpec& spec, std::size_t n,
                        std::uint64_t seed) {
  const std::size_t c =
      static_cast<std::size_t>(dataset::num_input_channels(spec));
  const std::size_t w = dataset::num_input_columns(spec);
  nn::Tensor x({n, c, 1, w});
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = dist(rng);
  return x;
}

TEST(Int8ModelTest, CalibratedContextRunsInt8AndIsThreadCountInvariant) {
  if (!avx2_available()) GTEST_SKIP() << "avx2_int8 backend unavailable";
  BackendGuard backend_guard;
  ThreadGuard thread_guard;
  const dataset::InputSpec spec = test_spec();
  nn::Sequential graph = build_test_model(spec);
  const nn::Tensor calib_x = random_input(spec, 32, 5);
  const auto entries = nn::calibrate_input_ranges(graph, calib_x);
  ASSERT_FALSE(entries.empty());
  nn::apply_calibration(graph, entries);

  nn::SharedModel model(std::move(graph));
  const nn::Tensor x = random_input(spec, 6, 6);
  const std::size_t c = x.dim(1), w = x.dim(3);

  ASSERT_TRUE(simd::set_active(Backend::kAvx2Int8));
  std::vector<float> first;
  for (const int threads : {1, 3, 8}) {
    common::set_num_threads(threads);
    nn::InferenceContext ctx(model, {c, 1, w}, 8);
    std::memcpy(ctx.input(), x.data(), x.numel() * sizeof(float));
    const std::uint64_t before = nn::int8_kernel_dispatches();
    const tensor::ConstTensorView logits = ctx.run(6);
    // The honesty counter must move: the conv/dense layers really ran
    // the quantized drivers, not silently the fp32 path.
    EXPECT_GT(nn::int8_kernel_dispatches(), before);
    const std::vector<float> out(logits.data(),
                                 logits.data() + logits.numel());
    if (first.empty()) {
      first = out;
    } else {
      EXPECT_EQ(std::memcmp(first.data(), out.data(),
                            first.size() * sizeof(float)),
                0)
          << "threads=" << threads;
    }
  }
}

TEST(Int8ModelTest, UncalibratedModelDegradesToBitIdenticalAvx2) {
  if (!avx2_available()) GTEST_SKIP() << "avx2_int8 backend unavailable";
  BackendGuard guard;
  const dataset::InputSpec spec = test_spec();
  nn::SharedModel model(build_test_model(spec));
  const nn::Tensor x = random_input(spec, 4, 9);
  const std::size_t c = x.dim(1), w = x.dim(3);

  std::vector<float> out_avx2, out_int8;
  for (const Backend backend : {Backend::kAvx2, Backend::kAvx2Int8}) {
    ASSERT_TRUE(simd::set_active(backend));
    nn::InferenceContext ctx(model, {c, 1, w}, 4);
    std::memcpy(ctx.input(), x.data(), x.numel() * sizeof(float));
    const std::uint64_t before = nn::int8_kernel_dispatches();
    const tensor::ConstTensorView logits = ctx.run(4);
    // No calibrated layers -> the int8 drivers must NOT fire.
    EXPECT_EQ(nn::int8_kernel_dispatches(), before);
    auto& dst = backend == Backend::kAvx2 ? out_avx2 : out_int8;
    dst.assign(logits.data(), logits.data() + logits.numel());
  }
  ASSERT_EQ(out_avx2.size(), out_int8.size());
  EXPECT_EQ(std::memcmp(out_avx2.data(), out_int8.data(),
                        out_avx2.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace deepcsi
