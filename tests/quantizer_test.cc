// Eq. (8) quantization: grid placement, wrap/clamp behavior, error bounds,
// and the error-propagation ordering across spatial streams that drives
// Fig. 13 / Fig. 15.
#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "feedback/quantizer.h"
#include "linalg/svd.h"

namespace deepcsi::feedback {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(QuantGridTest, PhiGridMatchesEquation8) {
  for (int b : {7, 9}) {
    EXPECT_NEAR(dequantize_phi(0, b), kPi / (1 << b), 1e-15);
    const double step = kPi / (1 << (b - 1));
    for (std::uint16_t q = 1; q < 8; ++q)
      EXPECT_NEAR(dequantize_phi(q, b) - dequantize_phi(q - 1, b), step, 1e-12);
    // Top of the grid stays below 2 pi.
    EXPECT_LT(dequantize_phi(static_cast<std::uint16_t>((1 << b) - 1), b),
              2.0 * kPi);
  }
}

TEST(QuantGridTest, PsiGridMatchesEquation8) {
  for (int b : {5, 7}) {
    EXPECT_NEAR(dequantize_psi(0, b), kPi / (1 << (b + 2)), 1e-15);
    const double step = kPi / (1 << (b + 1));
    for (std::uint16_t q = 1; q < 8; ++q)
      EXPECT_NEAR(dequantize_psi(q, b) - dequantize_psi(q - 1, b), step, 1e-12);
    EXPECT_LT(dequantize_psi(static_cast<std::uint16_t>((1 << b) - 1), b),
              kPi / 2.0);
  }
}

TEST(QuantizerTest, RoundTripErrorBounded) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> uphi(0.0, 2.0 * kPi);
  std::uniform_real_distribution<double> upsi(0.0, kPi / 2.0);
  for (int b_phi : {7, 9}) {
    const double half_step = kPi / (1 << b_phi);
    for (int t = 0; t < 500; ++t) {
      const double phi = uphi(rng);
      const double rec = dequantize_phi(quantize_phi(phi, b_phi), b_phi);
      const double err = std::abs(std::remainder(rec - phi, 2.0 * kPi));
      EXPECT_LE(err, half_step + 1e-12);
    }
  }
  for (int b_psi : {5, 7}) {
    const double half_step = kPi / (1 << (b_psi + 2));
    for (int t = 0; t < 500; ++t) {
      const double psi = upsi(rng);
      const double rec = dequantize_psi(quantize_psi(psi, b_psi), b_psi);
      EXPECT_LE(std::abs(rec - psi), half_step + 1e-12);
    }
  }
}

TEST(QuantizerTest, PhiWrapsAroundModulo2Pi) {
  const int b = 7;
  // The Eq. (8) grid is offset half a step from 0, so an angle just below
  // 2 pi may land on the last grid point or wrap to index 0 — either way
  // the wrap-aware error stays within half a step.
  const double phi = 2.0 * kPi - 1e-6;
  const std::uint16_t q = quantize_phi(phi, b);
  EXPECT_TRUE(q == 0 || q == (1 << b) - 1) << q;
  const double err =
      std::abs(std::remainder(dequantize_phi(q, b) - phi, 2.0 * kPi));
  EXPECT_LE(err, kPi / (1 << b) + 1e-12);
  // Negative inputs wrap to the equivalent positive angle.
  EXPECT_EQ(quantize_phi(-0.1, b), quantize_phi(2.0 * kPi - 0.1, b));
  // Multiples of 2 pi beyond the principal range wrap as well.
  EXPECT_EQ(quantize_phi(1.0 + 4.0 * kPi, b), quantize_phi(1.0, b));
}

TEST(QuantizerTest, PsiClampsAtGridEnds) {
  const int b = 5;
  EXPECT_EQ(quantize_psi(0.0, b), 0);
  EXPECT_EQ(quantize_psi(kPi / 2.0, b), (1 << b) - 1);
  EXPECT_EQ(quantize_psi(10.0, b), (1 << b) - 1);  // out-of-range clamps
}

TEST(QuantizerTest, MoreBitsNeverWorse) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> uphi(0.0, 2.0 * kPi);
  double err7 = 0.0, err9 = 0.0;
  for (int t = 0; t < 2000; ++t) {
    const double phi = uphi(rng);
    err7 += std::abs(std::remainder(
        dequantize_phi(quantize_phi(phi, 7), 7) - phi, 2.0 * kPi));
    err9 += std::abs(std::remainder(
        dequantize_phi(quantize_phi(phi, 9), 9) - phi, 2.0 * kPi));
  }
  EXPECT_LT(err9, err7);
}

TEST(QuantizerTest, CodebooksMatchStandard) {
  EXPECT_EQ(mu_mimo_codebook_high().b_phi, 9);
  EXPECT_EQ(mu_mimo_codebook_high().b_psi, 7);
  EXPECT_EQ(mu_mimo_codebook_low().b_phi, 7);
  EXPECT_EQ(mu_mimo_codebook_low().b_psi, 5);
}

TEST(QuantizerTest, DequantizeRejectsOutOfRangeIndex) {
  EXPECT_THROW(dequantize_phi(1 << 7, 7), std::logic_error);
  EXPECT_THROW(dequantize_psi(1 << 5, 5), std::logic_error);
}

linalg::CMat random_v(std::size_t m, std::size_t nss, std::mt19937_64& rng) {
  return linalg::svd(linalg::CMat::random_gaussian(m, m, rng))
      .v.first_columns(nss);
}

TEST(QuantizedVtildeTest, CloseToUnquantizedVtilde) {
  std::mt19937_64 rng(5);
  for (int t = 0; t < 50; ++t) {
    const linalg::CMat v = random_v(3, 2, rng);
    const linalg::CMat exact = reconstruct_v(decompose_v(v));
    const linalg::CMat quant = quantized_vtilde(v, mu_mimo_codebook_high());
    EXPECT_LT(linalg::max_abs_diff(exact, quant), 0.05);
  }
}

TEST(QuantizedVtildeTest, HighCodebookBeatsLowCodebook) {
  // Fig. 13: (7,9) reconstructs better than (5,7).
  std::mt19937_64 rng(6);
  double err_low = 0.0, err_high = 0.0;
  for (int t = 0; t < 200; ++t) {
    const linalg::CMat v = random_v(3, 2, rng);
    const linalg::CMat exact = reconstruct_v(decompose_v(v));
    err_low +=
        linalg::max_abs_diff(exact, quantized_vtilde(v, mu_mimo_codebook_low()));
    err_high += linalg::max_abs_diff(
        exact, quantized_vtilde(v, mu_mimo_codebook_high()));
  }
  EXPECT_LT(err_high, err_low);
}

TEST(QuantizedVtildeTest, SecondStreamErrorExceedsFirst) {
  // The recursion of Algorithm 1 propagates quantization error from the
  // first reconstructed stream into the later ones (Sec. V / Fig. 13).
  std::mt19937_64 rng(7);
  double err_s0 = 0.0, err_s1 = 0.0;
  for (int t = 0; t < 400; ++t) {
    const linalg::CMat v = random_v(3, 2, rng);
    const linalg::CMat exact = reconstruct_v(decompose_v(v));
    const linalg::CMat quant = quantized_vtilde(v, mu_mimo_codebook_high());
    for (std::size_t r = 0; r < 3; ++r) {
      err_s0 += std::abs(exact(r, 0) - quant(r, 0));
      err_s1 += std::abs(exact(r, 1) - quant(r, 1));
    }
  }
  EXPECT_GT(err_s1, err_s0);
}

}  // namespace
}  // namespace deepcsi::feedback
