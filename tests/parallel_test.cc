// Thread pool and deterministic parallel_for: index coverage, exception
// propagation, and bit-identical NN layer results across thread counts.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace deepcsi {
namespace {

using nn::Tensor;
using tests::ThreadGuard;

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (const int threads : {1, 4}) {
    common::set_num_threads(threads);
    for (const std::size_t grain : {1ul, 3ul, 7ul, 100ul, 1000ul}) {
      std::vector<int> hits(257, 0);  // chunks write disjoint slots
      common::parallel_for(0, hits.size(), grain,
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                           });
      for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i << " grain " << grain
                              << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, SubrangeAndEmptyRange) {
  std::vector<int> hits(20, 0);
  common::parallel_for(5, 15, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i], i >= 5 && i < 15 ? 1 : 0);
  common::parallel_for(7, 7, 1, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ParallelForTest, PropagatesExceptions) {
  ThreadGuard guard;
  common::set_num_threads(4);
  EXPECT_THROW(
      common::parallel_for(0, 100, 1,
                           [](std::size_t lo, std::size_t) {
                             if (lo == 42) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // Single-chunk ranges take the serial fallback; a throw there must not
  // leave the thread marked as inside a parallel region.
  EXPECT_THROW(common::parallel_for(0, 10, 100,
                                    [](std::size_t, std::size_t) {
                                      throw std::runtime_error("boom");
                                    }),
               std::runtime_error);
  EXPECT_NO_THROW(common::set_num_threads(2));  // throws if the flag leaked
  common::set_num_threads(4);
  // The pool must still be usable afterwards.
  int sum = 0;
  std::vector<int> hits(10, 0);
  common::parallel_for(0, 10, 2, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i] = 1;
  });
  for (int h : hits) sum += h;
  EXPECT_EQ(sum, 10);
}

TEST(ParallelForTest, NestedCallsRunSerially) {
  ThreadGuard guard;
  common::set_num_threads(4);
  std::vector<int> hits(16 * 8, 0);
  common::parallel_for(0, 16, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      common::parallel_for(0, 8, 2, [&](std::size_t jlo, std::size_t jhi) {
        for (std::size_t j = jlo; j < jhi; ++j) ++hits[i * 8 + j];
      });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, SetNumThreadsRoundTrip) {
  ThreadGuard guard;
  common::set_num_threads(3);
  EXPECT_EQ(common::num_threads(), 3);
  common::set_num_threads(1);
  EXPECT_EQ(common::num_threads(), 1);
  EXPECT_THROW(common::set_num_threads(0), std::logic_error);
}

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = dist(rng);
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

// Runs forward + backward at a given thread count and returns
// (out, grad_in, grad_w, grad_b).
template <typename LayerT>
std::vector<Tensor> run_layer(LayerT& layer, const Tensor& x,
                              const Tensor& grad_out, int threads) {
  common::set_num_threads(threads);
  for (nn::Param* p : layer.params()) p->grad.zero();
  std::vector<Tensor> out;
  out.push_back(layer.forward(x, /*training=*/false));
  out.push_back(layer.backward(grad_out));
  for (nn::Param* p : layer.params()) out.push_back(p->grad);
  return out;
}

TEST(ParallelDeterminismTest, DenseBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937_64 rng(7);
  nn::Dense dense(37, 19, rng);
  const Tensor x = random_tensor({5, 37}, 11);
  const Tensor g = random_tensor({5, 19}, 13);
  const auto r1 = run_layer(dense, x, g, 1);
  const auto r4 = run_layer(dense, x, g, 4);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i)
    expect_bitwise_equal(r1[i], r4[i]);
}

TEST(ParallelDeterminismTest, Conv2dBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937_64 rng(21);
  nn::Conv2d conv(3, 8, 1, 5, rng);
  const Tensor x = random_tensor({4, 3, 1, 33}, 23);
  const Tensor g = random_tensor({4, 8, 1, 33}, 29);
  const auto r1 = run_layer(conv, x, g, 1);
  const auto r4 = run_layer(conv, x, g, 4);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i)
    expect_bitwise_equal(r1[i], r4[i]);
}

TEST(ParallelDeterminismTest, GrainForIsSane) {
  EXPECT_GE(common::grain_for(0), 1u);
  EXPECT_EQ(common::grain_for(1, 64), 64u);
  EXPECT_EQ(common::grain_for(1 << 20, 1 << 15), 1u);
}

}  // namespace
}  // namespace deepcsi
