// DeepCSI model builder: the paper's architecture (including the quoted
// 489,301 trainable parameters), kernel schedules, and pipeline plumbing.
#include <gtest/gtest.h>

#include <random>

#include "core/model.h"
#include "core/pipeline.h"
#include "nn/loss.h"

namespace deepcsi::core {
namespace {

TEST(ModelConfigTest, DefaultKernelSchedule) {
  EXPECT_EQ(default_kernels(1), (std::vector<int>{7}));
  EXPECT_EQ(default_kernels(2), (std::vector<int>{7, 3}));
  EXPECT_EQ(default_kernels(3), (std::vector<int>{7, 5, 3}));
  EXPECT_EQ(default_kernels(5), (std::vector<int>{7, 7, 7, 5, 3}));
  EXPECT_EQ(default_kernels(7), (std::vector<int>{7, 7, 7, 7, 7, 5, 3}));
}

TEST(ModelBuilderTest, PaperArchitectureHas489301Parameters) {
  // Sec. III-C: "a DNN containing 489,301 trainable parameters" for the
  // full 234-sub-carrier, 3-TX-antenna input (5 I/Q channels, 10 classes).
  nn::Sequential model =
      build_deepcsi_model(5, 234, 10, paper_model_config());
  EXPECT_EQ(model.num_trainable(), 489301u);
}

TEST(ModelBuilderTest, ForwardShape) {
  nn::Sequential model = build_deepcsi_model(5, 117, 10, quick_model_config());
  nn::Tensor x({3, 5, 1, 117});
  const nn::Tensor y = model.forward(x, false);
  EXPECT_EQ(y.rank(), 2u);
  EXPECT_EQ(y.dim(0), 3u);
  EXPECT_EQ(y.dim(1), 10u);
}

TEST(ModelBuilderTest, HandlesNarrowInputsWithManyLayers) {
  // 7 conv layers on a 54-sub-carrier input: pooling must stop at width 1
  // instead of collapsing to zero.
  ModelConfig cfg = quick_model_config();
  cfg.conv_layers = 7;
  cfg.kernel_widths = default_kernels(7);
  nn::Sequential model = build_deepcsi_model(2, 54, 10, cfg);
  nn::Tensor x({1, 2, 1, 54});
  EXPECT_EQ(model.forward(x, false).dim(1), 10u);
}

TEST(ModelBuilderTest, ParameterCountTrendsMatchFig7) {
  // Fig. 7b: more filters -> more parameters. Fig. 7a: more conv layers ->
  // *fewer* total parameters, because each extra max-pool halves the
  // flatten width feeding the first dense layer.
  ModelConfig cfg = quick_model_config();
  nn::Sequential base = build_deepcsi_model(5, 117, 10, cfg);
  cfg.filters *= 2;
  nn::Sequential wider = build_deepcsi_model(5, 117, 10, cfg);
  EXPECT_GT(wider.num_trainable(), base.num_trainable());
  cfg.filters /= 2;
  cfg.conv_layers += 1;
  cfg.kernel_widths = default_kernels(cfg.conv_layers);
  nn::Sequential deeper = build_deepcsi_model(5, 117, 10, cfg);
  EXPECT_LT(deeper.num_trainable(), base.num_trainable());
}

TEST(ModelBuilderTest, InputValidation) {
  EXPECT_THROW(build_deepcsi_model(0, 100, 10, quick_model_config()),
               std::logic_error);
  EXPECT_THROW(build_deepcsi_model(5, 1, 10, quick_model_config()),
               std::logic_error);
  EXPECT_THROW(build_deepcsi_model(5, 100, 1, quick_model_config()),
               std::logic_error);
  ModelConfig bad = quick_model_config();
  bad.dropout = {0.5f};  // mismatched with dense
  EXPECT_THROW(build_deepcsi_model(5, 100, 10, bad), std::logic_error);
}

TEST(ModelBuilderTest, DeterministicInitBySeed) {
  ModelConfig cfg = quick_model_config();
  nn::Sequential m1 = build_deepcsi_model(5, 117, 10, cfg);
  nn::Sequential m2 = build_deepcsi_model(5, 117, 10, cfg);
  auto p1 = m1.params(), p2 = m2.params();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i)
    for (std::size_t j = 0; j < p1[i]->value.numel(); ++j)
      EXPECT_EQ(p1[i]->value[j], p2[i]->value[j]);
}

// Synthetic 4-D classification task: class-dependent bump position along
// the sub-carrier axis. Exercises run_classification end to end without
// PHY simulation cost.
dataset::SplitSets make_synthetic_split(std::size_t per_class,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 0.3f);
  const std::size_t w = 40, c = 2, classes = 10;
  auto make = [&](std::size_t n_per) {
    nn::LabeledSet set;
    set.num_classes = static_cast<int>(classes);
    set.x = nn::Tensor({n_per * classes, c, 1, w});
    for (std::size_t cls = 0; cls < classes; ++cls) {
      for (std::size_t i = 0; i < n_per; ++i) {
        const std::size_t row = cls * n_per + i;
        for (std::size_t ch = 0; ch < c; ++ch)
          for (std::size_t p = 0; p < w; ++p) {
            const float bump =
                (p >= cls * 4 && p < cls * 4 + 4) ? 1.5f : 0.0f;
            set.x.at4(row, ch, 0, p) = bump + noise(rng);
          }
        set.y.push_back(static_cast<int>(cls));
      }
    }
    return set;
  };
  dataset::SplitSets split;
  split.train = make(per_class);
  split.test = make(per_class / 2);
  return split;
}

TEST(RunClassificationTest, LearnsSyntheticTask) {
  const dataset::SplitSets split = make_synthetic_split(12, 3);
  ExperimentConfig cfg = quick_experiment_config();
  cfg.model.filters = 12;
  cfg.model.conv_layers = 2;
  cfg.model.dense = {32, 16};
  cfg.model.dropout = {0.2f, 0.1f};
  cfg.train.epochs = 20;
  const ExperimentResult result = run_classification(split, cfg);
  EXPECT_GT(result.accuracy, 0.75);
  EXPECT_EQ(result.confusion.num_classes(), 10);
  EXPECT_GT(result.trainable_params, 0u);
}

TEST(AuthenticatorTest, ClassifyAndAuthenticateOnReports) {
  // Train a tiny model on synthetic data shaped like real feature specs,
  // then check the Authenticator plumbing: classify returns a valid id
  // with a sane confidence, authenticate accepts its own prediction and
  // rejects contradictions at high confidence thresholds.
  dataset::Scale tiny{3, 3, 8};
  dataset::GeneratorConfig gen;
  dataset::InputSpec spec;
  spec.subcarrier_stride = 8;

  std::vector<dataset::Trace> traces;
  for (int module : {0, 1}) {
    traces.push_back(dataset::generate_d1_trace(module, 1, 0, tiny, gen));
  }
  nn::LabeledSet train = dataset::make_labeled_set(traces, spec);

  ExperimentConfig cfg = quick_experiment_config();
  cfg.model.filters = 8;
  cfg.model.conv_layers = 2;
  cfg.model.dense = {16, 8};
  cfg.model.dropout = {0.1f, 0.1f};
  cfg.train.epochs = 8;
  cfg.train.val_fraction = 0.0;

  dataset::SplitSets split;
  split.train = train;
  split.test = train;
  Authenticator auth = train_authenticator(split, spec, cfg);

  const auto pred = auth.classify(traces[0].snapshots[0].report);
  EXPECT_GE(pred.module_id, 0);
  EXPECT_LT(pred.module_id, 10);
  EXPECT_GT(pred.confidence, 0.0);
  EXPECT_LE(pred.confidence, 1.0);

  // authenticate agrees with classify.
  EXPECT_TRUE(auth.authenticate(traces[0].snapshots[0].report, pred.module_id,
                                pred.confidence * 0.9));
  EXPECT_FALSE(auth.authenticate(traces[0].snapshots[0].report,
                                 (pred.module_id + 5) % 10, 0.0));
}

TEST(AuthenticatorTest, SaveLoadPreservesPredictions) {
  dataset::Scale tiny{2, 2, 16};
  dataset::GeneratorConfig gen;
  dataset::InputSpec spec;
  spec.subcarrier_stride = 16;
  std::vector<dataset::Trace> traces{
      dataset::generate_d1_trace(0, 1, 0, tiny, gen)};
  nn::LabeledSet train = dataset::make_labeled_set(traces, spec);

  ExperimentConfig cfg = quick_experiment_config();
  cfg.model.filters = 4;
  cfg.model.conv_layers = 1;
  cfg.model.dense = {8, 8};
  cfg.model.dropout = {0.0f, 0.0f};
  cfg.train.epochs = 2;
  cfg.train.val_fraction = 0.0;
  dataset::SplitSets split{train, train};
  Authenticator a1 = train_authenticator(split, spec, cfg);

  const std::string path = ::testing::TempDir() + "/auth_weights.bin";
  a1.save(path);

  nn::Sequential fresh = build_deepcsi_model(
      dataset::num_input_channels(spec),
      static_cast<int>(dataset::num_input_columns(spec)), 10, cfg.model);
  Authenticator a2(std::move(fresh), spec);
  a2.load(path);

  const auto p1 = a1.classify(traces[0].snapshots[0].report);
  const auto p2 = a2.classify(traces[0].snapshots[0].report);
  EXPECT_EQ(p1.module_id, p2.module_id);
  EXPECT_NEAR(p1.confidence, p2.confidence, 1e-6);
  std::remove(path.c_str());
}

TEST(ExperimentConfigTest, ScaleVariantsDiffer) {
  EXPECT_GT(full_experiment_config().model.filters,
            quick_experiment_config().model.filters);
  EXPECT_EQ(full_experiment_config().model.conv_layers, 5);
}

}  // namespace
}  // namespace deepcsi::core
