// Bounded-session-table semantics: TTL expiry and LRU ceiling eviction
// must forget the right stations, a station that reappears after
// eviction must start a brand-new window, snapshots must round-trip a
// partially-evicted table, and — the core contract — a surviving
// station's verdict must be bit-identical to what an UNBOUNDED table
// (any shard count) reports for the same prediction stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "capture/mac.h"
#include "common/hash.h"
#include "serving/session_table.h"

namespace deepcsi {
namespace {

using serving::SessionConfig;
using serving::SessionTable;
using serving::SessionTableStats;
using serving::StationVerdict;

std::string scratch_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

capture::MacAddress station(std::uint64_t id) {
  return capture::MacAddress::for_fleet_station(id);
}

core::Authenticator::Prediction synth_prediction(std::uint64_t i) {
  core::Authenticator::Prediction p;
  p.module_id = static_cast<int>(common::mix64(i * 2 + 1) % 10);
  p.confidence =
      0.5 + static_cast<double>(common::mix64(i * 2 + 2) % 1000003) * 1e-7;
  return p;
}

TEST(SessionEvictTest, TtlExpiresIdleStations) {
  // One shard so the TTL sweep (which runs in the recorded station's
  // shard) deterministically sees every idle session.
  SessionConfig cfg;
  cfg.window = 5;
  cfg.num_shards = 1;
  cfg.ttl_s = 10.0;
  SessionTable table(cfg);

  // Stations 0..4 report at t=0..4, then go silent; station 99's report
  // moves the stream clock to 12.5 and triggers the sweep. Station k is
  // stale when k + 10 <= 12.5, i.e. stations 0, 1 and 2.
  for (std::uint64_t s = 0; s < 5; ++s)
    table.record(station(s), synth_prediction(s), static_cast<double>(s));
  ASSERT_EQ(table.num_stations(), 5u);

  table.record(station(99), synth_prediction(99), 12.5);
  EXPECT_FALSE(table.verdict(station(0)).has_value());
  EXPECT_FALSE(table.verdict(station(1)).has_value());
  EXPECT_FALSE(table.verdict(station(2)).has_value());
  EXPECT_TRUE(table.verdict(station(3)).has_value());
  EXPECT_TRUE(table.verdict(station(4)).has_value());
  EXPECT_TRUE(table.verdict(station(99)).has_value());

  const SessionTableStats st = table.stats();
  EXPECT_EQ(st.evicted_ttl, 3u);
  EXPECT_EQ(st.evicted_lru, 0u);
  EXPECT_EQ(st.stations, 3u);
  // Station 99 is inserted before the sweep runs, so occupancy peaked
  // at all six.
  EXPECT_EQ(st.peak_stations, 6u);
}

TEST(SessionEvictTest, TtlNeverEvictsTheReportingStation) {
  // A single station whose own reports are further apart than the TTL:
  // record() touches it to the LRU front before sweeping, so it must
  // survive its own staleness.
  SessionConfig cfg;
  cfg.window = 3;
  cfg.num_shards = 1;
  cfg.ttl_s = 1.0;
  SessionTable table(cfg);
  for (int i = 0; i < 5; ++i)
    table.record(station(7), synth_prediction(static_cast<std::uint64_t>(i)),
                 10.0 * i);
  const auto v = table.verdict(station(7));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->total_reports, 5u);
  EXPECT_EQ(table.stats().evicted_ttl, 0u);
}

TEST(SessionEvictTest, LruCeilingHoldsUnderPressure) {
  SessionConfig cfg;
  cfg.window = 5;
  cfg.num_shards = 4;
  cfg.max_stations = 64;
  SessionTable table(cfg);
  ASSERT_EQ(table.stats().station_ceiling, 64u);  // 4 shards x 16

  // 10x the ceiling in distinct stations: occupancy must never exceed
  // the ceiling, and the overflow must show up as LRU evictions.
  const std::uint64_t n = 640;
  for (std::uint64_t s = 0; s < n; ++s) {
    table.record(station(s), synth_prediction(s),
                 0.001 * static_cast<double>(s));
    ASSERT_LE(table.num_stations(), 64u);
  }
  const SessionTableStats st = table.stats();
  EXPECT_EQ(st.stations, 64u);
  EXPECT_EQ(st.evicted_lru, n - 64u);
  EXPECT_EQ(st.evicted_ttl, 0u);
  EXPECT_LE(st.approx_bytes,
            64u * SessionTable::session_footprint_bytes(cfg.window));
  // The survivors are the most recent arrivals in every shard — spot
  // check the very last station is resident and the very first is not.
  EXPECT_TRUE(table.verdict(station(n - 1)).has_value());
  EXPECT_FALSE(table.verdict(station(0)).has_value());
}

TEST(SessionEvictTest, MaxBytesTranslatesToAnEntryCeiling) {
  SessionConfig cfg;
  cfg.window = 31;
  cfg.num_shards = 2;
  cfg.max_bytes = 40 * SessionTable::session_footprint_bytes(cfg.window);
  SessionTable table(cfg);
  EXPECT_EQ(table.stats().station_ceiling, 40u);
  for (std::uint64_t s = 0; s < 200; ++s)
    table.record(station(s), synth_prediction(s), 0.0);
  EXPECT_LE(table.stats().approx_bytes, cfg.max_bytes);
}

TEST(SessionEvictTest, EvictedStationReappearsWithAFreshWindow) {
  SessionConfig cfg;
  cfg.window = 5;
  cfg.num_shards = 1;
  cfg.max_stations = 2;
  SessionTable table(cfg);

  // Fill station 1's window with module 3 votes, then push it out with
  // two newer stations.
  core::Authenticator::Prediction p3;
  p3.module_id = 3;
  p3.confidence = 0.9;
  for (int i = 0; i < 5; ++i) table.record(station(1), p3, 0.1 * i);
  table.record(station(2), synth_prediction(2), 1.0);
  table.record(station(3), synth_prediction(3), 1.1);
  ASSERT_FALSE(table.verdict(station(1)).has_value());

  // Station 1 returns voting module 8: no stale majority carry-over —
  // one vote, one report, changed=true, verdict is module 8 immediately.
  core::Authenticator::Prediction p8;
  p8.module_id = 8;
  p8.confidence = 0.7;
  const SessionTable::RecordResult r = table.record(station(1), p8, 2.0);
  EXPECT_TRUE(r.changed);
  EXPECT_EQ(r.verdict.module_id, 8);
  EXPECT_EQ(r.verdict.votes, 1u);
  EXPECT_EQ(r.verdict.window_size, 1u);
  EXPECT_EQ(r.verdict.total_reports, 1u);
  EXPECT_EQ(r.verdict.mean_confidence, 0.7);
}

TEST(SessionEvictTest, PartiallyEvictedTableRoundTripsThroughSnapshot) {
  const std::string path = scratch_path("partial_evict.snap");
  SessionConfig cfg;
  cfg.window = 7;
  cfg.num_shards = 4;
  cfg.max_stations = 32;
  SessionTable table(cfg);
  for (std::uint64_t i = 0; i < 500; ++i)
    table.record(station(common::mix64(i) % 100), synth_prediction(i),
                 0.01 * static_cast<double>(i));
  ASSERT_GT(table.stats().evicted_lru, 0u);  // the table really did evict
  table.save_snapshot(path);

  SessionTable restored(cfg);
  std::string err;
  ASSERT_EQ(restored.restore_snapshot(path, &err),
            SessionTable::RestoreStatus::kRestored)
      << err;
  const std::vector<StationVerdict> a = table.snapshot();
  const std::vector<StationVerdict> b = restored.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].station, b[i].station);
    EXPECT_EQ(a[i].module_id, b[i].module_id);
    EXPECT_EQ(a[i].votes, b[i].votes);
    EXPECT_EQ(a[i].window_size, b[i].window_size);
    EXPECT_EQ(a[i].total_reports, b[i].total_reports);
    EXPECT_EQ(a[i].mean_confidence, b[i].mean_confidence);
    EXPECT_EQ(a[i].last_timestamp_s, b[i].last_timestamp_s);
  }
  // The restored table keeps evicting: push past the ceiling again and
  // the cap still holds (LRU order was rebuilt from timestamps).
  for (std::uint64_t s = 1000; s < 1100; ++s) {
    restored.record(station(s), synth_prediction(s), 100.0);
    ASSERT_LE(restored.num_stations(), restored.stats().station_ceiling);
  }
  std::remove(path.c_str());
}

TEST(SessionEvictTest, SurvivorVerdictsAreBitIdenticalAcrossShardCounts) {
  // One prediction stream, four tables: an unbounded reference plus
  // bounded tables at 1/4/16 shards. Eviction MAY choose different
  // victims per shard layout — but any station a bounded table kept and
  // never evicted (lifetime report count matches the reference) must
  // report THE SAME verdict bit for bit: verdict math depends only on
  // the per-station stream, never on sharding.
  //
  // 16 "hot" stations report every other record, so they can never sink
  // to any shard's LRU tail; 1000 "cold" stations churn past the cap.
  constexpr std::uint64_t kHot = 16;
  SessionConfig unbounded;
  unbounded.window = 9;
  unbounded.num_shards = 8;
  SessionTable reference(unbounded);

  std::vector<std::unique_ptr<SessionTable>> bounded;
  for (const std::size_t shards : {1u, 4u, 16u}) {
    SessionConfig cfg;
    cfg.window = 9;
    cfg.num_shards = shards;
    cfg.max_stations = 256;
    bounded.push_back(std::make_unique<SessionTable>(cfg));
  }

  for (std::uint64_t i = 0; i < 8000; ++i) {
    const std::uint64_t id = (i % 2 == 0)
                                 ? (i / 2) % kHot
                                 : 1000 + common::mix64(i) % 1000;
    const capture::MacAddress mac = station(id);
    const core::Authenticator::Prediction p = synth_prediction(i);
    const double t = 0.01 * static_cast<double>(i);
    reference.record(mac, p, t);
    for (auto& table : bounded) table->record(mac, p, t);
  }

  std::map<std::uint64_t, StationVerdict> ref;
  for (const StationVerdict& v : reference.snapshot())
    ref[v.station.to_u64()] = v;

  for (auto& table : bounded) {
    std::size_t never_evicted = 0;
    for (const StationVerdict& v : table->snapshot()) {
      const StationVerdict& r = ref.at(v.station.to_u64());
      if (v.total_reports != r.total_reports) continue;  // evicted + reborn
      ++never_evicted;
      EXPECT_EQ(v.module_id, r.module_id);
      EXPECT_EQ(v.votes, r.votes);
      EXPECT_EQ(v.window_size, r.window_size);
      EXPECT_EQ(v.mean_confidence, r.mean_confidence);  // bit-exact doubles
      EXPECT_EQ(v.last_timestamp_s, r.last_timestamp_s);
    }
    // The invariant must be exercised, not vacuously true: at minimum
    // every hot station survived untouched.
    EXPECT_GE(never_evicted, kHot);
    for (std::uint64_t h = 0; h < kHot; ++h) {
      const auto v = table->verdict(station(h));
      ASSERT_TRUE(v.has_value()) << "hot station " << h << " was evicted";
      EXPECT_EQ(v->total_reports, ref.at(station(h).to_u64()).total_reports);
    }
  }
}

TEST(SessionEvictTest, RestoreRefusesEvictionConfigMismatch) {
  const std::string path = scratch_path("evict_mismatch.snap");
  SessionConfig cfg;
  cfg.window = 5;
  cfg.ttl_s = 30.0;
  cfg.max_stations = 100;
  SessionTable table(cfg);
  table.record(station(1), synth_prediction(1), 0.5);
  table.save_snapshot(path);

  // Same window, different eviction policy: the snapshot's occupancy was
  // shaped by a different forgetting rule, so loading it would smuggle
  // that history into this table. Refused whole, table untouched.
  SessionConfig other = cfg;
  other.max_stations = 50;
  SessionTable mismatched(other);
  mismatched.record(station(9), synth_prediction(9), 0.1);
  std::string err;
  EXPECT_EQ(mismatched.restore_snapshot(path, &err),
            SessionTable::RestoreStatus::kCorrupt);
  EXPECT_NE(err.find("eviction config mismatch"), std::string::npos) << err;
  EXPECT_TRUE(mismatched.verdict(station(9)).has_value());  // untouched

  SessionConfig other_ttl = cfg;
  other_ttl.ttl_s = 31.0;
  SessionTable mismatched_ttl(other_ttl);
  EXPECT_EQ(mismatched_ttl.restore_snapshot(path, &err),
            SessionTable::RestoreStatus::kCorrupt);
  EXPECT_NE(err.find("eviction config mismatch"), std::string::npos) << err;

  // The matching config still restores — the refusal is the mismatch,
  // not the presence of eviction settings.
  SessionTable matching(cfg);
  EXPECT_EQ(matching.restore_snapshot(path, &err),
            SessionTable::RestoreStatus::kRestored)
      << err;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepcsi
