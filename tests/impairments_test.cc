// Hardware impairment profiles: determinism, distinctness across modules,
// and the physical scales the simulation depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/impairments.h"

namespace deepcsi::phy {
namespace {

TEST(ModuleProfileTest, DeterministicById) {
  const ModuleProfile a = make_module_profile(3);
  const ModuleProfile b = make_module_profile(3);
  ASSERT_EQ(a.chains.size(), b.chains.size());
  EXPECT_EQ(a.cfo_bias_hz, b.cfo_bias_hz);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
  for (std::size_t m = 0; m < a.chains.size(); ++m) {
    EXPECT_EQ(a.chains[m].gain, b.chains[m].gain);
    EXPECT_EQ(a.chains[m].static_phase, b.chains[m].static_phase);
    for (int k : {-122, -50, 7, 99})
      EXPECT_EQ(a.chains[m].response(k), b.chains[m].response(k));
  }
}

TEST(ModuleProfileTest, ModulesAreDistinct) {
  for (int i = 0; i < kNumModules; ++i) {
    for (int j = i + 1; j < kNumModules; ++j) {
      const ModuleProfile a = make_module_profile(i);
      const ModuleProfile b = make_module_profile(j);
      double diff = 0.0;
      for (int k = -122; k <= 122; k += 10)
        diff += std::abs(a.chains[0].response(k) - b.chains[0].response(k));
      EXPECT_GT(diff, 0.1) << "modules " << i << " and " << j;
    }
  }
}

TEST(ModuleProfileTest, InvalidIdThrows) {
  EXPECT_THROW(make_module_profile(-1), std::logic_error);
  EXPECT_THROW(make_module_profile(kNumModules), std::logic_error);
  EXPECT_THROW(make_module_profile(0, 0), std::logic_error);
  EXPECT_THROW(make_module_profile(0, 5), std::logic_error);
}

TEST(ChainImpairmentTest, ResponseNearUnity) {
  // Imperfections are small: |G_m(k)| within ~20% of the chain gain and
  // the ripple varies smoothly with k.
  for (int id = 0; id < kNumModules; ++id) {
    const ModuleProfile p = make_module_profile(id);
    for (const ChainImpairment& c : p.chains) {
      for (int k = -122; k <= 122; k += 4) {
        const double mag = std::abs(c.response(k));
        EXPECT_GT(mag, 0.6) << "module " << id;
        EXPECT_LT(mag, 1.5) << "module " << id;
      }
    }
  }
}

TEST(ChainImpairmentTest, ResponseVariesAcrossSubcarriers) {
  // The per-chain filter ripple is the frequency-selective part of the
  // fingerprint: it must actually vary over the band.
  const ModuleProfile p = make_module_profile(0);
  const auto r_lo = p.chains[0].response(-122);
  const auto r_hi = p.chains[0].response(122);
  EXPECT_GT(std::abs(r_lo - r_hi), 1e-3);
}

TEST(ChainImpairmentTest, ChainsWithinModuleDiffer) {
  // Per-chain differences are what survives the SVD; identical chains
  // would make the fingerprint vanish.
  const ModuleProfile p = make_module_profile(1);
  for (std::size_t m = 1; m < p.chains.size(); ++m) {
    double diff = 0.0;
    for (int k = -122; k <= 122; k += 10)
      diff += std::abs(p.chains[0].response(k) - p.chains[m].response(k));
    EXPECT_GT(diff, 0.05);
  }
}

TEST(ModuleProfileTest, CfoWithinResidualRange) {
  for (int id = 0; id < kNumModules; ++id) {
    const ModuleProfile p = make_module_profile(id);
    EXPECT_LE(std::abs(p.cfo_bias_hz), 2000.0);
    EXPECT_LE(std::abs(p.sfo_ppm), 5.0);
  }
}

TEST(BeamformeeProfileTest, DeterministicAndDistinct) {
  const BeamformeeProfile a0 = make_beamformee_profile(0, 2);
  const BeamformeeProfile a1 = make_beamformee_profile(1, 2);
  EXPECT_EQ(a0.chains[0].response(5), make_beamformee_profile(0, 2).chains[0].response(5));
  EXPECT_NE(a0.chains[0].response(5), a1.chains[0].response(5));
  EXPECT_GE(a0.noise_figure_db, 0.0);
  EXPECT_LE(a0.noise_figure_db, 2.0);
}

TEST(ModuleProfileTest, IqImageLeakageIsSmall) {
  for (int id = 0; id < kNumModules; ++id)
    for (const auto& c : make_module_profile(id).chains)
      EXPECT_LE(std::abs(c.iq_beta), 0.015 + 1e-12);
}

TEST(LtfSignProductTest, SymmetricAndBinary) {
  for (int k = 1; k <= 122; ++k) {
    const int s = ltf_sign_product(k);
    EXPECT_TRUE(s == 1 || s == -1);
    EXPECT_EQ(s, ltf_sign_product(-k));
  }
}

TEST(ImpairmentTogglesTest, DisablingComponentsZeroesOnlyThem) {
  const ImpairmentToggles all;
  ImpairmentToggles no_phase;
  no_phase.static_phase = false;
  const ModuleProfile base = make_module_profile(2, 3, all);
  const ModuleProfile ablated = make_module_profile(2, 3, no_phase);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(ablated.chains[m].static_phase, 0.0);
    // Everything else keeps the identical random draw.
    EXPECT_EQ(ablated.chains[m].gain, base.chains[m].gain);
    EXPECT_EQ(ablated.chains[m].iq_beta, base.chains[m].iq_beta);
    ASSERT_EQ(ablated.chains[m].ripple.size(), base.chains[m].ripple.size());
    for (std::size_t t = 0; t < base.chains[m].ripple.size(); ++t)
      EXPECT_EQ(ablated.chains[m].ripple[t].amplitude,
                base.chains[m].ripple[t].amplitude);
  }
  EXPECT_EQ(ablated.cfo_bias_hz, base.cfo_bias_hz);
}

TEST(ImpairmentTogglesTest, AllOffYieldsIdealHardware) {
  const ImpairmentToggles none{false, false, false, false, false, false};
  const ModuleProfile p = make_module_profile(0, 3, none);
  for (const ChainImpairment& c : p.chains) {
    EXPECT_EQ(c.gain, 1.0);
    EXPECT_EQ(c.static_phase, 0.0);
    EXPECT_TRUE(c.ripple.empty());
    EXPECT_EQ(c.iq_beta, cplx(0.0, 0.0));
    for (int k : {-100, 0, 100})
      EXPECT_NEAR(std::abs(c.response(k) - cplx(1.0, 0.0)), 0.0, 1e-12);
  }
  EXPECT_EQ(p.cfo_bias_hz, 0.0);
  EXPECT_EQ(p.sfo_ppm, 0.0);
}

TEST(LtfSignProductTest, NotConstant) {
  int pos = 0, neg = 0;
  for (int k = 2; k <= 122; ++k)
    (ltf_sign_product(k) > 0 ? pos : neg) += 1;
  EXPECT_GT(pos, 10);
  EXPECT_GT(neg, 10);
}

}  // namespace
}  // namespace deepcsi::phy
