// Failpoint registry: spec parsing, deterministic seeded firing, n/skip/p
// semantics, counters, and the disabled fast path.
#include <gtest/gtest.h>

#include <cerrno>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/failpoint.h"

namespace deepcsi {
namespace {

using common::FailKind;
using common::Failpoint;
using common::FailpointFire;
namespace failpoints = common::failpoints;

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::clear_all(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  Failpoint fp("test.unarmed");
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(fp.evaluate().has_value());
  EXPECT_EQ(failpoints::evaluation_count("test.unarmed"), 0u);
  EXPECT_EQ(failpoints::fire_count("test.unarmed"), 0u);
}

TEST_F(FailpointTest, ErrFiresWithConfiguredErrno) {
  failpoints::configure("test.err", "err(ECONNRESET)");
  Failpoint fp("test.err");
  const auto fire = fp.evaluate();
  ASSERT_TRUE(fire.has_value());
  EXPECT_EQ(fire->kind, FailKind::kErr);
  EXPECT_EQ(fire->err, ECONNRESET);
}

TEST_F(FailpointTest, RejectAndShortKinds) {
  failpoints::configure("test.reject", "reject()");
  failpoints::configure("test.short", "short()");
  Failpoint rej("test.reject");
  Failpoint sh("test.short");
  ASSERT_TRUE(rej.evaluate().has_value());
  EXPECT_EQ(rej.evaluate()->kind, FailKind::kReject);
  ASSERT_TRUE(sh.evaluate().has_value());
  EXPECT_EQ(sh.evaluate()->kind, FailKind::kShort);
}

TEST_F(FailpointTest, NDisarmsAfterExactlyNFires) {
  failpoints::configure("test.n", "reject(n=3)");
  Failpoint fp("test.n");
  int fired = 0;
  for (int i = 0; i < 100; ++i)
    if (fp.evaluate()) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(failpoints::fire_count("test.n"), 3u);
  // Site auto-disarmed: later evaluations take the fast path again.
  EXPECT_EQ(failpoints::evaluation_count("test.n"), 3u);
}

TEST_F(FailpointTest, SkipPassesThroughFirstKEvaluations) {
  failpoints::configure("test.skip", "reject(skip=5,n=2)");
  Failpoint fp("test.skip");
  std::vector<bool> pattern;
  for (int i = 0; i < 10; ++i) pattern.push_back(fp.evaluate().has_value());
  const std::vector<bool> want = {false, false, false, false, false,
                                  true,  true,  false, false, false};
  EXPECT_EQ(pattern, want);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    failpoints::clear_all();
    failpoints::configure("test.p",
                          "err(EAGAIN,p=0.3,seed=" + std::to_string(seed) + ")");
    Failpoint fp("test.p");
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(fp.evaluate().has_value());
    return pattern;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);       // same seed, same fire pattern
  EXPECT_NE(a, c);       // different seed, different pattern
  int fires = 0;
  for (const bool f : a) fires += f;
  EXPECT_GT(fires, 20);  // p=0.3 over 200 draws: loose sanity bounds
  EXPECT_LT(fires, 120);
}

TEST_F(FailpointTest, SpecStringArmsMultipleSites) {
  failpoints::configure_spec(
      "test.spec1=err(EPIPE,n=1);test.spec2=reject(n=1)", "test");
  Failpoint a("test.spec1");
  Failpoint b("test.spec2");
  ASSERT_TRUE(a.evaluate().has_value());
  EXPECT_EQ(a.evaluate().has_value(), false);
  ASSERT_TRUE(b.evaluate().has_value());
}

TEST_F(FailpointTest, ClearDisarmsButKeepsCounters) {
  failpoints::configure("test.clear", "reject()");
  Failpoint fp("test.clear");
  ASSERT_TRUE(fp.evaluate().has_value());
  failpoints::clear("test.clear");
  EXPECT_FALSE(fp.evaluate().has_value());
  EXPECT_EQ(failpoints::fire_count("test.clear"), 1u);
}

TEST_F(FailpointTest, ScopedSpecClearsOnDestruction) {
  {
    failpoints::ScopedSpec spec("test.scoped=reject()");
    Failpoint fp("test.scoped");
    EXPECT_TRUE(fp.evaluate().has_value());
  }
  Failpoint fp("test.scoped");
  EXPECT_FALSE(fp.evaluate().has_value());
}

TEST_F(FailpointTest, KnownSitesListsConfiguredAndEvaluated) {
  failpoints::configure("test.known", "reject()");
  const auto sites = failpoints::known_sites();
  bool found = false;
  for (const auto& s : sites) found = found || s == "test.known";
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  const std::vector<std::string> bad = {
      "noaction",                 // no '='
      "=reject()",                // empty site
      "s=explode()",              // unknown kind
      "s=err()",                  // err needs an errno
      "s=err(EWHATEVER)",         // unknown errno name
      "s=reject(ECONNRESET)",     // errno name on non-err
      "s=reject(p=1.5)",          // p out of range
      "s=reject(p=abc)",          // malformed number
      "s=reject(n=)",             // empty value
      "s=reject(frobnicate=1)",   // unknown parameter
      "s=reject",                 // missing parens
  };
  for (const auto& spec : bad)
    EXPECT_THROW(failpoints::configure_spec(spec, "test"), std::invalid_argument)
        << spec;
}

// ----------------------------------------------------- site: file.fsync

std::string read_all(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[256];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST_F(FailpointTest, FileFsyncFailureAbortsAtomicWriteCleanly) {
  const std::string path =
      std::string(::testing::TempDir()) + "/fp-fsync.dat";
  common::write_file_atomic(path, std::string("old contents"));
  {
    // First evaluation is the DATA fsync: the write must fail whole —
    // destination untouched, temp file gone.
    failpoints::ScopedSpec spec("file.fsync=err(EIO,n=1)");
    EXPECT_THROW(common::write_file_atomic(path, std::string("new")),
                 std::runtime_error);
    EXPECT_EQ(read_all(path), "old contents");
  }
  // Site disarmed: the same call now goes through.
  common::write_file_atomic(path, std::string("new contents"));
  EXPECT_EQ(read_all(path), "new contents");
  std::remove(path.c_str());
}

TEST_F(FailpointTest, DirectoryFsyncFailureThrowsAfterRename) {
  // skip=1 lets the data fsync pass and fires on the PARENT-DIRECTORY
  // fsync — the rename has already happened, so the new contents are
  // visible, but the caller still sees a throw (documented contract:
  // treat any throw as "the write is not durable").
  const std::string path =
      std::string(::testing::TempDir()) + "/fp-dirsync.dat";
  common::write_file_atomic(path, std::string("old"));
  {
    failpoints::ScopedSpec spec("file.fsync=err(EIO,skip=1,n=1)");
    EXPECT_THROW(common::write_file_atomic(path, std::string("renamed")),
                 std::runtime_error);
    EXPECT_EQ(read_all(path), "renamed");
  }
  EXPECT_GE(failpoints::fire_count("file.fsync"), 1u);
  std::remove(path.c_str());
}

TEST_F(FailpointTest, ReconfigureOverwritesAction) {
  failpoints::configure("test.re", "reject(n=1)");
  Failpoint fp("test.re");
  ASSERT_TRUE(fp.evaluate().has_value());
  EXPECT_FALSE(fp.evaluate().has_value());
  failpoints::configure("test.re", "err(EIO)");
  const auto fire = fp.evaluate();
  ASSERT_TRUE(fire.has_value());
  EXPECT_EQ(fire->err, EIO);
}

}  // namespace
}  // namespace deepcsi
