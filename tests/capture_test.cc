// Observer-side codec: MAC addresses, CRC-32, VHT MIMO Control packing,
// Action frame round trips, pcap files and monitor filtering.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "capture/monitor.h"
#include "capture/pcap.h"
#include "capture/vht_frame.h"
#include "linalg/svd.h"
#include "phy/ofdm.h"

namespace deepcsi::capture {
namespace {

TEST(MacAddressTest, ParseFormatRoundTrip) {
  const MacAddress mac = MacAddress::parse("04:f0:21:de:ef:07");
  EXPECT_EQ(mac.to_string(), "04:f0:21:de:ef:07");
  EXPECT_EQ(mac.octets[0], 0x04);
  EXPECT_EQ(mac.octets[5], 0x07);
}

TEST(MacAddressTest, ParseRejectsGarbage) {
  EXPECT_THROW(MacAddress::parse("nonsense"), std::invalid_argument);
  EXPECT_THROW(MacAddress::parse("00:11:22:33:44"), std::invalid_argument);
}

TEST(MacAddressTest, TestbedAddressing) {
  EXPECT_NE(MacAddress::for_module(0), MacAddress::for_module(1));
  EXPECT_NE(MacAddress::for_station(0), MacAddress::for_module(0));
  EXPECT_EQ(MacAddress::broadcast().octets[0], 0xFF);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::vector<std::uint8_t> data{'1', '2', '3', '4', '5',
                                       '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(VhtMimoControlTest, PackUnpackAllFields) {
  for (int nc : {1, 2, 4}) {
    for (int nr : {1, 3, 8}) {
      for (int bw : {0, 1, 2}) {
        for (bool high : {false, true}) {
          VhtMimoControl c;
          c.nc = nc;
          c.nr = nr;
          c.bandwidth = bw;
          c.mu_feedback = true;
          c.codebook_high = high;
          c.sounding_token = 37;
          EXPECT_EQ(VhtMimoControl::unpack(c.pack()), c);
        }
      }
    }
  }
}

TEST(VhtMimoControlTest, QuantConfigFollowsCodebook) {
  VhtMimoControl c;
  c.codebook_high = true;
  EXPECT_EQ(c.quant_config().b_phi, 9);
  c.codebook_high = false;
  EXPECT_EQ(c.quant_config().b_phi, 7);
}

BeamformingActionFrame make_test_frame(int module = 2, int station = 0,
                                       bool full_band = false) {
  std::mt19937_64 rng(7);
  std::vector<int> subcarriers;
  if (full_band) {
    subcarriers = phy::vht80_sounded_subcarriers();
  } else {
    for (int k = -4; k < 4; ++k) subcarriers.push_back(k);
  }
  std::vector<linalg::CMat> v;
  for (std::size_t i = 0; i < subcarriers.size(); ++i)
    v.push_back(
        linalg::svd(linalg::CMat::random_gaussian(3, 3, rng)).v.first_columns(2));
  const auto report = feedback::compress_v_series(
      v, subcarriers, feedback::mu_mimo_codebook_high());

  BeamformingActionFrame f;
  f.ra = MacAddress::for_module(module);
  f.ta = MacAddress::for_station(station);
  f.bssid = f.ra;
  f.sequence = 1234;
  f.mimo_control.nc = 2;
  f.mimo_control.nr = 3;
  f.mimo_control.bandwidth = 2;
  f.mimo_control.sounding_token = 5;
  f.report = feedback::pack_report(report);
  return f;
}

TEST(ActionFrameTest, SerializeParseRoundTrip) {
  const BeamformingActionFrame f = make_test_frame();
  const auto bytes = f.serialize();
  const auto parsed = BeamformingActionFrame::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ra, f.ra);
  EXPECT_EQ(parsed->ta, f.ta);
  EXPECT_EQ(parsed->bssid, f.bssid);
  EXPECT_EQ(parsed->sequence, f.sequence);
  EXPECT_EQ(parsed->mimo_control, f.mimo_control);
  EXPECT_EQ(parsed->report, f.report);
}

TEST(ActionFrameTest, CorruptedFcsRejected) {
  auto bytes = make_test_frame().serialize();
  bytes[10] ^= 0x40;  // flip a bit in the TA
  EXPECT_FALSE(BeamformingActionFrame::parse(bytes).has_value());
}

TEST(ActionFrameTest, OtherTrafficRejected) {
  EXPECT_FALSE(BeamformingActionFrame::parse({0x08, 0x00, 0x01}).has_value());
  std::vector<std::uint8_t> data_frame(64, 0);
  data_frame[0] = 0x08;  // data frame, not management
  EXPECT_FALSE(BeamformingActionFrame::parse(data_frame).has_value());
}

TEST(PcapTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/deepcsi_test.pcap";
  std::vector<CapturedPacket> packets;
  for (int i = 0; i < 5; ++i) {
    CapturedPacket p;
    p.timestamp_s = 100.0 + i * 0.25;
    p.bytes = make_test_frame(i % 3).serialize();
    packets.push_back(p);
  }
  write_pcap(path, packets);
  const auto loaded = read_pcap(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_NEAR(loaded[i].timestamp_s, packets[i].timestamp_s, 1e-5);
    EXPECT_EQ(loaded[i].bytes, packets[i].bytes);
  }
  std::remove(path.c_str());
}

TEST(PcapTest, ReadRejectsNonPcap) {
  const std::string path = ::testing::TempDir() + "/deepcsi_not_a.pcap";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("hello world, definitely not pcap", f);
  std::fclose(f);
  EXPECT_THROW(read_pcap(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MonitorTest, FiltersBySourceAddress) {
  std::vector<CapturedPacket> packets;
  for (int i = 0; i < 6; ++i) {
    CapturedPacket p;
    p.timestamp_s = i;
    p.bytes = make_test_frame(/*module=*/1, /*station=*/i % 2,
                              /*full_band=*/true)
                  .serialize();
    packets.push_back(p);
  }
  // Add junk the monitor must skip.
  packets.push_back({3.5, {1, 2, 3, 4}});

  const auto all = observe_feedback(packets, std::nullopt);
  EXPECT_EQ(all.size(), 6u);
  const auto sta0 =
      observe_feedback(packets, MacAddress::for_station(0));
  EXPECT_EQ(sta0.size(), 3u);
  for (const auto& obs : sta0) {
    EXPECT_EQ(obs.beamformee, MacAddress::for_station(0));
    EXPECT_EQ(obs.beamformer, MacAddress::for_module(1));
  }
}

TEST(MonitorTest, ReportAnglesSurviveTheAirInterface) {
  // End-to-end: compress -> frame -> serialize -> parse -> unpack must
  // return the exact quantized angles (the observer's data = the
  // beamformee's data; this is why DeepCSI needs no SDR).
  std::mt19937_64 rng(9);
  std::vector<int> subcarriers;
  std::vector<linalg::CMat> v;
  for (int k = -4; k < 4; ++k) {
    subcarriers.push_back(k);
    v.push_back(
        linalg::svd(linalg::CMat::random_gaussian(3, 3, rng)).v.first_columns(2));
  }
  const auto report = feedback::compress_v_series(
      v, subcarriers, feedback::mu_mimo_codebook_high());

  BeamformingActionFrame f = make_test_frame();
  f.report = feedback::pack_report(report);
  const auto parsed = BeamformingActionFrame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  const auto unpacked = feedback::unpack_report(
      parsed->report, 3, 2, subcarriers, feedback::mu_mimo_codebook_high());
  for (std::size_t k = 0; k < report.per_subcarrier.size(); ++k) {
    EXPECT_EQ(unpacked.per_subcarrier[k].q_phi, report.per_subcarrier[k].q_phi);
    EXPECT_EQ(unpacked.per_subcarrier[k].q_psi, report.per_subcarrier[k].q_psi);
  }
}

}  // namespace
}  // namespace deepcsi::capture
