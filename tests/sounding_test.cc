// NDP sounding / Hhat estimation (Eq. 9-10): noise scaling, impairment
// injection, and the invariances that decide what can be a fingerprint.
#include <gtest/gtest.h>

#include <cmath>

#include "feedback/angles.h"
#include "phy/channel.h"
#include "phy/sounding.h"

namespace deepcsi::phy {
namespace {

class SoundingTest : public ::testing::Test {
 protected:
  SoundingTest() : scene_(0), model_(scene_) {
    truth_ = model_.cfr(scene_.ap_position_a(),
                        scene_.beamformee_position(0, 3), 3, 2,
                        vht80_sounded_subcarriers(), {}, {0.0, 0.0}, rng_);
    tx_ = make_module_profile(0, 3);
    rx_ = make_beamformee_profile(0, 2);
    ctx_ = make_trace_context(tx_, 7);
  }

  std::mt19937_64 rng_{42};
  Scene scene_;
  ChannelModel model_;
  Cfr truth_;
  ModuleProfile tx_;
  BeamformeeProfile rx_;
  TraceContext ctx_;
};

TEST_F(SoundingTest, ShapePreserved) {
  SoundingNoise noise;
  const Cfr est = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, rng_);
  ASSERT_EQ(est.h.size(), truth_.h.size());
  EXPECT_EQ(est.subcarriers, truth_.subcarriers);
}

TEST_F(SoundingTest, EstimateApproachesScaledTruthAtHighSnr) {
  // At very high SNR the estimate differs from the truth only by the
  // (bounded) hardware responses: the relative deviation stays moderate.
  SoundingNoise noise;
  noise.snr_db = 80.0;
  const Cfr est = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, rng_);
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < est.h.size(); ++k) {
    for (std::size_t m = 0; m < 3; ++m)
      for (std::size_t n = 0; n < 2; ++n) {
        num += std::abs(std::abs(est.h[k](m, n)) - std::abs(truth_.h[k](m, n)));
        den += std::abs(truth_.h[k](m, n));
      }
  }
  EXPECT_LT(num / den, 0.35);  // gains/ripple stay within ~35% on average
}

TEST_F(SoundingTest, NoiseScalesWithSnr) {
  // Two estimates drawn with the same per-packet seed differ only by the
  // AWGN realization; lower SNR must produce a larger spread.
  auto spread = [&](double snr_db) {
    SoundingNoise noise;
    noise.snr_db = snr_db;
    std::mt19937_64 r1(5), r2(5);
    const Cfr a = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, r1);
    std::mt19937_64 r3(1234);
    const Cfr b = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, r3);
    double d = 0.0;
    for (std::size_t k = 0; k < a.h.size(); ++k)
      d += (a.h[k] - b.h[k]).frobenius_norm();
    return d;
  };
  EXPECT_GT(spread(10.0), spread(40.0));
}

TEST_F(SoundingTest, DeterministicGivenSeeds) {
  SoundingNoise noise;
  std::mt19937_64 r1(9), r2(9);
  const Cfr a = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, r1);
  const Cfr b = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, r2);
  for (std::size_t k = 0; k < a.h.size(); ++k)
    EXPECT_LT(linalg::max_abs_diff(a.h[k], b.h[k]), 1e-15);
}

TEST_F(SoundingTest, TraceContextDeterministicAndPerTrace) {
  const TraceContext c1 = make_trace_context(tx_, 7);
  const TraceContext c2 = make_trace_context(tx_, 7);
  const TraceContext c3 = make_trace_context(tx_, 8);
  EXPECT_EQ(c1.chain_phase_drift, c2.chain_phase_drift);
  EXPECT_EQ(c1.cfo_trace_offset_hz, c2.cfo_trace_offset_hz);
  EXPECT_NE(c1.chain_phase_drift, c3.chain_phase_drift);
  EXPECT_EQ(c1.chain_phase_drift.size(), 3u);
}

TEST_F(SoundingTest, VtildeStableAcrossPacketsDespiteCommonOffsets) {
  // Per-packet nuisances (PPO, PDD, PA, common CFO phase) churn Hhat from
  // packet to packet, yet the derived Vtilde must stay nearly constant at
  // high SNR — this is the paper's core robustness claim.
  SoundingNoise noise;
  noise.snr_db = 60.0;
  std::mt19937_64 ra(1), rb(2);
  const Cfr ha = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, ra);
  const Cfr hb = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, rb);

  // Hhat itself differs strongly across packets...
  double h_diff = 0.0, h_norm = 0.0;
  for (std::size_t k = 0; k < ha.h.size(); ++k) {
    h_diff += (ha.h[k] - hb.h[k]).frobenius_norm();
    h_norm += ha.h[k].frobenius_norm();
  }
  EXPECT_GT(h_diff, 0.2 * h_norm);

  // ... but the normalized Vtilde barely moves.
  const auto va = feedback::beamforming_v(ha.h, 2);
  const auto vb = feedback::beamforming_v(hb.h, 2);
  double v_diff = 0.0;
  for (std::size_t k = 0; k < va.size(); ++k) {
    const auto ta = feedback::reconstruct_v(feedback::decompose_v(va[k]));
    const auto tb = feedback::reconstruct_v(feedback::decompose_v(vb[k]));
    v_diff += linalg::max_abs_diff(ta, tb);
  }
  // Residual churn comes from per-packet CFO jitter entering the per-chain
  // LTF slot ramp (a genuinely per-chain term), not from common offsets.
  EXPECT_LT(v_diff / static_cast<double>(va.size()), 0.12);
}

TEST_F(SoundingTest, DifferentModulesYieldDifferentVtilde) {
  // The discriminative signal: with the channel held fixed, swapping the
  // Wi-Fi module must move Vtilde by more than the packet-to-packet noise.
  SoundingNoise noise;
  noise.snr_db = 60.0;
  const ModuleProfile tx2 = make_module_profile(1, 3);
  const TraceContext ctx2 = make_trace_context(tx2, 7);
  std::mt19937_64 ra(1), rb(1);
  const Cfr ha = estimate_cfr(tx_, ctx_, rx_, truth_, 3, 2, noise, ra);
  const Cfr hb = estimate_cfr(tx2, ctx2, rx_, truth_, 3, 2, noise, rb);
  const auto va = feedback::beamforming_v(ha.h, 2);
  const auto vb = feedback::beamforming_v(hb.h, 2);
  double v_diff = 0.0;
  for (std::size_t k = 0; k < va.size(); ++k) {
    const auto ta = feedback::reconstruct_v(feedback::decompose_v(va[k]));
    const auto tb = feedback::reconstruct_v(feedback::decompose_v(vb[k]));
    v_diff += linalg::max_abs_diff(ta, tb);
  }
  EXPECT_GT(v_diff / static_cast<double>(va.size()), 0.1);
}

TEST_F(SoundingTest, ArgumentValidation) {
  SoundingNoise noise;
  EXPECT_THROW(estimate_cfr(tx_, ctx_, rx_, truth_, 4, 2, noise, rng_),
               std::logic_error);
  EXPECT_THROW(estimate_cfr(tx_, ctx_, rx_, truth_, 3, 3, noise, rng_),
               std::logic_error);
  Cfr empty;
  EXPECT_THROW(estimate_cfr(tx_, ctx_, rx_, empty, 3, 2, noise, rng_),
               std::logic_error);
}

}  // namespace
}  // namespace deepcsi::phy
