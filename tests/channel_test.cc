// Ray-traced CFR model (Eq. 2): shape, determinism, frequency selectivity,
// spatial structure and fading behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "phy/channel.h"

namespace deepcsi::phy {
namespace {

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : scene_(0), model_(scene_) {}
  Scene scene_;
  ChannelModel model_;
  FadingParams no_fading_{0.0, 0.0};
};

TEST_F(ChannelTest, ShapeMatchesRequest) {
  std::mt19937_64 rng(1);
  const auto& sc = vht80_sounded_subcarriers();
  const Cfr cfr = model_.cfr(scene_.ap_position_a(),
                             scene_.beamformee_position(0, 1), 3, 2, sc, {},
                             no_fading_, rng);
  ASSERT_EQ(cfr.h.size(), 234u);
  EXPECT_EQ(cfr.subcarriers, sc);
  for (const auto& h : cfr.h) {
    EXPECT_EQ(h.rows(), 3u);
    EXPECT_EQ(h.cols(), 2u);
  }
}

TEST_F(ChannelTest, DeterministicWithoutFading) {
  std::mt19937_64 rng1(1), rng2(2);  // rng unused when jitter is zero
  const auto& sc = vht80_sounded_subcarriers();
  const Point tx = scene_.ap_position_a();
  const Point rx = scene_.beamformee_position(0, 3);
  const Cfr a = model_.cfr(tx, rx, 3, 2, sc, {}, no_fading_, rng1);
  const Cfr b = model_.cfr(tx, rx, 3, 2, sc, {}, no_fading_, rng2);
  for (std::size_t k = 0; k < a.h.size(); ++k)
    EXPECT_LT(linalg::max_abs_diff(a.h[k], b.h[k]), 1e-15);
}

TEST_F(ChannelTest, FadingPerturbsButOnlySlightly) {
  std::mt19937_64 rng1(1), rng2(99);
  const auto& sc = vht80_sounded_subcarriers();
  const Point tx = scene_.ap_position_a();
  const Point rx = scene_.beamformee_position(0, 3);
  const FadingParams fading;  // defaults
  const Cfr a = model_.cfr(tx, rx, 3, 2, sc, {}, fading, rng1);
  const Cfr b = model_.cfr(tx, rx, 3, 2, sc, {}, fading, rng2);
  double rel = 0.0, norm = 0.0;
  for (std::size_t k = 0; k < a.h.size(); ++k) {
    rel += (a.h[k] - b.h[k]).frobenius_norm();
    norm += a.h[k].frobenius_norm();
  }
  EXPECT_GT(rel, 0.0);
  EXPECT_LT(rel, 0.5 * norm);  // small-scale variation, not a new channel
}

TEST_F(ChannelTest, FrequencySelectiveAcrossBand) {
  std::mt19937_64 rng(1);
  const auto& sc = vht80_sounded_subcarriers();
  const Cfr cfr = model_.cfr(scene_.ap_position_a(),
                             scene_.beamformee_position(0, 1), 3, 2, sc, {},
                             no_fading_, rng);
  // Multipath must produce magnitude variation over the 80 MHz band.
  double mn = 1e9, mx = 0.0;
  for (const auto& h : cfr.h) {
    const double v = std::abs(h(0, 0));
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx / mn, 1.05);
}

TEST_F(ChannelTest, PowerDecaysWithDistance) {
  std::mt19937_64 rng(1);
  const std::vector<int> sc{-50, 0 - 2, 50};
  const Point tx = scene_.ap_position_a();
  const Point near{tx.x, tx.y + 1.0, tx.z};
  const Point far{tx.x, tx.y + 4.0, tx.z};
  const Cfr a = model_.cfr(tx, near, 1, 1, sc, {}, no_fading_, rng);
  const Cfr b = model_.cfr(tx, far, 1, 1, sc, {}, no_fading_, rng);
  double pa = 0.0, pb = 0.0;
  for (std::size_t k = 0; k < sc.size(); ++k) {
    pa += std::norm(a.h[k](0, 0));
    pb += std::norm(b.h[k](0, 0));
  }
  EXPECT_GT(pa, pb);
}

TEST_F(ChannelTest, MovingReceiverChangesSpatialSignature) {
  std::mt19937_64 rng(1);
  const auto& sc = vht80_sounded_subcarriers();
  const Point tx = scene_.ap_position_a();
  const Cfr a = model_.cfr(tx, scene_.beamformee_position(0, 1), 3, 2, sc, {},
                           no_fading_, rng);
  const Cfr b = model_.cfr(tx, scene_.beamformee_position(0, 9), 3, 2, sc, {},
                           no_fading_, rng);
  double diff = 0.0, norm = 0.0;
  for (std::size_t k = 0; k < a.h.size(); ++k) {
    diff += (a.h[k] - b.h[k]).frobenius_norm();
    norm += a.h[k].frobenius_norm();
  }
  EXPECT_GT(diff, 0.3 * norm);
}

TEST_F(ChannelTest, ExtraScatterersContribute) {
  std::mt19937_64 rng(1);
  const std::vector<int> sc{-20, 20};
  const Point tx = scene_.ap_position_a();
  const Point rx = scene_.beamformee_position(1, 2);
  const Cfr base = model_.cfr(tx, rx, 2, 2, sc, {}, no_fading_, rng);
  const std::vector<Scatterer> person{
      {{tx.x + 0.3, tx.y - 0.4, 1.5}, 0.5}};
  const Cfr with = model_.cfr(tx, rx, 2, 2, sc, person, no_fading_, rng);
  EXPECT_GT(linalg::max_abs_diff(base.h[0], with.h[0]), 1e-8);
  EXPECT_EQ(model_.num_paths(1), model_.num_paths(0) + 1);
}

TEST_F(ChannelTest, IncrementalPhasorConsistentAcrossSubcarrierSubsets) {
  // The per-path phasor is advanced incrementally over k. Requesting a
  // sparse sub-carrier set must give bit-identical values to requesting a
  // dense set and picking out the same indices.
  std::mt19937_64 rng(1);
  const Point tx = scene_.ap_position_a();
  const Point rx = scene_.beamformee_position(1, 4);
  const std::vector<int> sparse{-122, -60, -2, 37, 122};
  std::vector<int> dense;
  for (int k = -122; k <= 122; ++k) dense.push_back(k);
  const Cfr a = model_.cfr(tx, rx, 2, 2, sparse, {}, no_fading_, rng);
  const Cfr b = model_.cfr(tx, rx, 2, 2, dense, {}, no_fading_, rng);
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    const std::size_t j = static_cast<std::size_t>(sparse[i] + 122);
    EXPECT_LT(linalg::max_abs_diff(a.h[i], b.h[j]), 1e-15) << sparse[i];
  }
}

TEST_F(ChannelTest, InvalidArgumentsThrow) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(model_.cfr({0, 0, 0}, {1, 1, 1}, 0, 1, {1}, {}, no_fading_, rng),
               std::logic_error);
  EXPECT_THROW(model_.cfr({0, 0, 0}, {1, 1, 1}, 1, 1, {}, {}, no_fading_, rng),
               std::logic_error);
}

}  // namespace
}  // namespace deepcsi::phy
