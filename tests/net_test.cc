// Wire protocol: frame codec roundtrips, byte-stream reassembly down to
// one-byte reads, malformed-input rejection (truncated frames, bad
// magic/version, oversized length prefixes), and the publisher's bounded
// write buffers (short-write resumption, slow-subscriber drops).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <cstdint>
#include <netinet/in.h>
#include <span>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "capture/monitor.h"
#include "dataset/traces.h"
#include "feedback/bitpack.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/publisher.h"
#include "net/socket.h"

namespace deepcsi {
namespace {

using net::FrameAssembler;
using net::FrameType;

capture::ObservedFeedback make_observed(int module, double timestamp_s) {
  dataset::Scale scale;
  scale.d1_snapshots_per_trace = 1;
  const dataset::Trace trace =
      dataset::generate_d1_trace(module, 1, 0, scale, {});
  capture::ObservedFeedback obs;
  obs.timestamp_s = timestamp_s;
  obs.beamformee = capture::MacAddress::for_station(module);
  obs.beamformer = capture::MacAddress::for_module(module);
  obs.report = trace.snapshots.front().report;
  return obs;
}

// Reports carry no operator==; the packed wire bytes ARE the identity the
// whole pipeline runs on, so compare those.
void expect_same_report(const feedback::CompressedFeedbackReport& a,
                        const feedback::CompressedFeedbackReport& b) {
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.nss, b.nss);
  EXPECT_EQ(a.quant.b_phi, b.quant.b_phi);
  EXPECT_EQ(a.quant.b_psi, b.quant.b_psi);
  EXPECT_EQ(a.subcarriers, b.subcarriers);
  EXPECT_EQ(feedback::pack_report(a), feedback::pack_report(b));
}

// ---------------------------------------------------------------- roundtrips

TEST(NetProtocolTest, ReportFrameRoundTripsBitExactly) {
  const capture::ObservedFeedback obs = make_observed(3, 12.625);
  const std::vector<std::uint8_t> frame = net::encode_report_frame(obs);

  FrameAssembler asm_;
  asm_.append(frame.data(), frame.size());
  FrameAssembler::Frame out;
  ASSERT_TRUE(asm_.next(out));
  EXPECT_EQ(out.type, static_cast<std::uint8_t>(FrameType::kFeedbackReport));

  const auto decoded = net::decode_report(
      std::span<const std::uint8_t>(out.payload.data(), out.payload.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->beamformee, obs.beamformee);
  EXPECT_EQ(decoded->beamformer, obs.beamformer);
  EXPECT_EQ(decoded->timestamp_s, obs.timestamp_s);
  expect_same_report(decoded->report, obs.report);
  EXPECT_FALSE(asm_.next(out));  // exactly one frame
  EXPECT_EQ(asm_.error(), FrameAssembler::Error::kNone);
}

TEST(NetProtocolTest, VerdictAndStatsFramesRoundTrip) {
  net::VerdictMsg v;
  v.station = capture::MacAddress::for_station(7);
  v.module_id = 4;
  v.votes = 17;
  v.window_size = 31;
  v.total_reports = 123456789ull;
  v.mean_confidence = 0.8125;
  v.last_timestamp_s = -3.5;
  const auto vframe = net::encode_verdict_frame(v);
  FrameAssembler asm_;
  asm_.append(vframe.data(), vframe.size());
  FrameAssembler::Frame out;
  ASSERT_TRUE(asm_.next(out));
  EXPECT_EQ(out.type, static_cast<std::uint8_t>(FrameType::kVerdictUpdate));
  const auto dv = net::decode_verdict(
      std::span<const std::uint8_t>(out.payload.data(), out.payload.size()));
  ASSERT_TRUE(dv.has_value());
  EXPECT_EQ(*dv, v);

  net::StatsMsg s;
  s.reports_classified = 1000;
  s.dropped_oldest = 3;
  s.rejected = 7;
  s.throughput_rps = 1234.5;
  s.batch_latency_p99_ms = 0.75;
  const auto sframe = net::encode_stats_frame(s);
  asm_.append(sframe.data(), sframe.size());
  ASSERT_TRUE(asm_.next(out));
  EXPECT_EQ(out.type, static_cast<std::uint8_t>(FrameType::kStats));
  const auto ds = net::decode_stats(
      std::span<const std::uint8_t>(out.payload.data(), out.payload.size()));
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(*ds, s);
}

// --------------------------------------------------------------- reassembly

TEST(NetProtocolTest, AssemblerSurvivesOneByteReads) {
  // Worst-case fragmentation: three frames delivered one byte at a time,
  // as a pathological TCP stream could.
  std::vector<std::uint8_t> stream;
  std::vector<capture::ObservedFeedback> sent;
  for (int module = 0; module < 3; ++module) {
    sent.push_back(make_observed(module, static_cast<double>(module)));
    const auto frame = net::encode_report_frame(sent.back());
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  FrameAssembler asm_;
  std::vector<capture::ObservedFeedback> got;
  for (const std::uint8_t byte : stream) {
    asm_.append(&byte, 1);
    FrameAssembler::Frame out;
    while (asm_.next(out)) {
      const auto decoded = net::decode_report(std::span<const std::uint8_t>(
          out.payload.data(), out.payload.size()));
      ASSERT_TRUE(decoded.has_value());
      got.push_back(*decoded);
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].beamformee, sent[i].beamformee);
    EXPECT_EQ(got[i].timestamp_s, sent[i].timestamp_s);
    expect_same_report(got[i].report, sent[i].report);
  }
  EXPECT_EQ(asm_.error(), FrameAssembler::Error::kNone);
  EXPECT_EQ(asm_.buffered_bytes(), 0u);
}

TEST(NetProtocolTest, TruncatedFrameIsNotAFrameAndNotAnError) {
  const auto frame = net::encode_report_frame(make_observed(0, 1.0));
  FrameAssembler asm_;
  asm_.append(frame.data(), frame.size() - 1);  // one byte short
  FrameAssembler::Frame out;
  EXPECT_FALSE(asm_.next(out));  // incomplete, waiting for more bytes
  EXPECT_EQ(asm_.error(), FrameAssembler::Error::kNone);
  const std::uint8_t last = frame.back();
  asm_.append(&last, 1);
  EXPECT_TRUE(asm_.next(out));  // arrives once the byte does
}

TEST(NetProtocolTest, BadMagicPoisonsTheStream) {
  std::vector<std::uint8_t> junk(64, 0xAB);
  FrameAssembler asm_;
  asm_.append(junk.data(), junk.size());
  FrameAssembler::Frame out;
  EXPECT_FALSE(asm_.next(out));
  EXPECT_EQ(asm_.error(), FrameAssembler::Error::kBadMagic);
  // Poisoned: even a valid frame appended afterwards is refused, because
  // framing can't be trusted past corruption.
  const auto frame = net::encode_report_frame(make_observed(0, 1.0));
  asm_.append(frame.data(), frame.size());
  EXPECT_FALSE(asm_.next(out));
  EXPECT_STREQ(net::error_name(asm_.error()), "bad-magic");
}

TEST(NetProtocolTest, BadVersionAndOversizedLengthAreTypedErrors) {
  {
    auto frame = net::encode_frame(FrameType::kStats, {});
    frame[4] = 99;  // version byte
    FrameAssembler asm_;
    asm_.append(frame.data(), frame.size());
    FrameAssembler::Frame out;
    EXPECT_FALSE(asm_.next(out));
    EXPECT_EQ(asm_.error(), FrameAssembler::Error::kBadVersion);
  }
  {
    // A hostile length prefix larger than any legal payload must be
    // rejected from the header alone — never allocated or waited on.
    std::vector<std::uint8_t> header;
    net::put_u32(header, net::kMagic);
    net::put_u8(header, net::kVersion);
    net::put_u8(header, static_cast<std::uint8_t>(FrameType::kFeedbackReport));
    net::put_u16(header, 0);
    net::put_u32(header, static_cast<std::uint32_t>(net::kMaxPayloadBytes) + 1);
    FrameAssembler asm_;
    asm_.append(header.data(), header.size());
    FrameAssembler::Frame out;
    EXPECT_FALSE(asm_.next(out));
    EXPECT_EQ(asm_.error(), FrameAssembler::Error::kOversized);
  }
}

// ------------------------------------------------------ malformed payloads

TEST(NetProtocolTest, DecodeReportRejectsCorruptPayloads) {
  const capture::ObservedFeedback obs = make_observed(1, 2.0);
  const auto frame = net::encode_report_frame(obs);
  const std::vector<std::uint8_t> payload(frame.begin() + net::kHeaderBytes,
                                          frame.end());
  auto view = [](const std::vector<std::uint8_t>& v) {
    return std::span<const std::uint8_t>(v.data(), v.size());
  };
  ASSERT_TRUE(net::decode_report(view(payload)).has_value());

  // Truncation at every prefix length must fail cleanly, never read OOB
  // (the sanitizer legs make that a hard guarantee, not a hope).
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> shorter(payload.begin(),
                                            payload.begin() +
                                                static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(net::decode_report(view(shorter)).has_value()) << cut;
  }

  {
    auto bad = payload;
    bad[12 + 8 + 2] = 0;  // m = 0: impossible geometry
    EXPECT_FALSE(net::decode_report(view(bad)).has_value());
  }
  {
    auto bad = payload;
    bad[12 + 8 + 3] = 9;  // nss = 9 > kMaxAntennas
    EXPECT_FALSE(net::decode_report(view(bad)).has_value());
  }
  {
    auto bad = payload;
    bad[12 + 8] = 0;  // b_phi = 0: no such codebook
    EXPECT_FALSE(net::decode_report(view(bad)).has_value());
  }
  {
    // Trailing garbage after the packed report: length bookkeeping must
    // notice the surplus.
    auto bad = payload;
    bad.push_back(0xFF);
    EXPECT_FALSE(net::decode_report(view(bad)).has_value());
  }
}

TEST(NetProtocolTest, DecodeVerdictAndStatsRejectWrongSizes) {
  const auto vframe = net::encode_verdict_frame(net::VerdictMsg{});
  std::vector<std::uint8_t> vpayload(vframe.begin() + net::kHeaderBytes,
                                     vframe.end());
  vpayload.pop_back();
  EXPECT_FALSE(net::decode_verdict(
                   std::span<const std::uint8_t>(vpayload.data(),
                                                 vpayload.size()))
                   .has_value());
  const auto sframe = net::encode_stats_frame(net::StatsMsg{});
  std::vector<std::uint8_t> spayload(sframe.begin() + net::kHeaderBytes,
                                     sframe.end());
  spayload.push_back(0);
  EXPECT_FALSE(net::decode_stats(
                   std::span<const std::uint8_t>(spayload.data(),
                                                 spayload.size()))
                   .has_value());
}

// ------------------------------------------------------------- publisher

// A raw subscriber socket with a deliberately tiny receive buffer so TCP
// flow control kicks in after a few KB — forcing the publisher down its
// partial-write path without megabytes of traffic.
int connect_tiny_subscriber(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

net::VerdictMsg numbered_verdict(std::uint64_t i) {
  net::VerdictMsg v;
  v.station = capture::MacAddress::for_station(static_cast<int>(i % 256));
  v.module_id = static_cast<std::int32_t>(i % 7);
  v.total_reports = i;  // sequence number: lets the reader check ordering
  return v;
}

TEST(NetPublisherTest, ShortWritesResumeWithoutCorruptingTheStream) {
  net::PublisherConfig cfg;
  cfg.sndbuf_bytes = 4096;  // with the tiny peer rcvbuf: EAGAIN after ~16KB
  net::VerdictPublisher pub(cfg);
  pub.start();
  const int fd = connect_tiny_subscriber(pub.port());
  while (pub.subscriber_count() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Publish ~56KB without reading a byte: far beyond both socket buffers,
  // so flushes MUST hit EAGAIN and park remainders (buffer budget 1 MiB —
  // nothing may be dropped, this test is about resumption).
  constexpr std::uint64_t kFrames = 1000;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    pub.publish(numbered_verdict(i));
  EXPECT_EQ(pub.stats().frames_dropped, 0u);

  // Now drain the stream and verify every frame arrives, intact and in
  // publish order, across all the partial-write seams. Generous flush
  // budget: sanitizer legs run this too.
  std::thread stopper(
      [&] { pub.stop(std::chrono::milliseconds(30000)); });
  FrameAssembler asm_;
  std::uint64_t next = 0;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) break;  // publisher flushed everything and closed
    asm_.append(buf, static_cast<std::size_t>(r));
    FrameAssembler::Frame frame;
    while (asm_.next(frame)) {
      const auto v = net::decode_verdict(std::span<const std::uint8_t>(
          frame.payload.data(), frame.payload.size()));
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(v->total_reports, next);
      ++next;
    }
  }
  stopper.join();
  ::close(fd);
  EXPECT_EQ(next, kFrames);
  EXPECT_EQ(asm_.error(), FrameAssembler::Error::kNone);
  EXPECT_GE(pub.stats().partial_writes, 1u);
}

TEST(NetPublisherTest, SlowSubscriberDropsWholeFramesNeverBytes) {
  net::PublisherConfig cfg;
  cfg.max_buffer_bytes = 2048;  // a few dozen frames, then drops
  cfg.sndbuf_bytes = 4096;
  net::VerdictPublisher pub(cfg);
  pub.start();
  const int fd = connect_tiny_subscriber(pub.port());
  while (pub.subscriber_count() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  constexpr std::uint64_t kFrames = 5000;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    pub.publish(numbered_verdict(i));
  const net::PublisherStats mid = pub.stats();
  EXPECT_GT(mid.frames_dropped, 0u);   // the slow reader shed load...
  EXPECT_LT(mid.frames_dropped, kFrames);  // ...but not everything

  std::thread stopper(
      [&] { pub.stop(std::chrono::milliseconds(30000)); });
  FrameAssembler asm_;
  std::uint64_t received = 0, last_seq = 0;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) break;
    asm_.append(buf, static_cast<std::size_t>(r));
    FrameAssembler::Frame frame;
    while (asm_.next(frame)) {
      const auto v = net::decode_verdict(std::span<const std::uint8_t>(
          frame.payload.data(), frame.payload.size()));
      // Drops must be whole frames: everything that does arrive decodes,
      // and sequence numbers only ever move forward.
      ASSERT_TRUE(v.has_value());
      if (received > 0) {
        EXPECT_GT(v->total_reports, last_seq);
      }
      last_seq = v->total_reports;
      ++received;
    }
  }
  stopper.join();
  ::close(fd);
  EXPECT_EQ(asm_.error(), FrameAssembler::Error::kNone);
  EXPECT_GT(received, 0u);
  EXPECT_EQ(received + pub.stats().frames_dropped, kFrames);
}

}  // namespace
}  // namespace deepcsi
