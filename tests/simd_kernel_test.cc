// The runtime-dispatched SIMD backend (nn/simd.h): dispatch override
// semantics, the usage-error exit on a bad DEEPCSI_SIMD value, and the
// cross-backend numerical contracts — the avx2 kernels must agree with
// the scalar reference within documented tolerances on randomized shapes
// that straddle every vector boundary (n % 8 != 0 remainders, single
// rows, single elements), while staying bitwise deterministic within a
// backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <random>
#include <vector>

#include "common/parallel.h"
#include "linalg/cmat.h"
#include "nn/activations.h"
#include "nn/gemm.h"
#include "nn/simd.h"
#include "test_util.h"

namespace deepcsi {
namespace {

using simd::Backend;
using tests::available_backends;
using tests::BackendGuard;
using tests::ThreadGuard;

bool avx2_available() {
  return simd::compiled_with_avx2() && simd::cpu_supports_avx2();
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  return v;
}

// ------------------------------------------------------------- dispatch

TEST(SimdDispatchTest, OverrideSwitchesTheActiveTable) {
  BackendGuard guard;
  ASSERT_TRUE(simd::set_active(Backend::kScalar));
  EXPECT_EQ(simd::active(), Backend::kScalar);
  EXPECT_EQ(simd::ops().id, Backend::kScalar);
  if (avx2_available()) {
    ASSERT_TRUE(simd::set_active(Backend::kAvx2));
    EXPECT_EQ(simd::active(), Backend::kAvx2);
    EXPECT_EQ(simd::ops().id, Backend::kAvx2);
  } else {
    EXPECT_FALSE(simd::set_active(Backend::kAvx2));
    EXPECT_EQ(simd::active(), Backend::kScalar);  // unchanged on refusal
  }
}

TEST(SimdDispatchTest, ResolveAcceptsTheDocumentedValues) {
  EXPECT_EQ(simd::resolve_backend("scalar"), Backend::kScalar);
  const Backend auto_backend = simd::resolve_backend(nullptr);
  EXPECT_EQ(auto_backend,
            avx2_available() ? Backend::kAvx2 : Backend::kScalar);
  EXPECT_EQ(simd::resolve_backend(""), auto_backend);
  if (avx2_available()) {
    EXPECT_EQ(simd::resolve_backend("avx2"), Backend::kAvx2);
    // int8 is opt-in only: never the default, but resolvable by name.
    EXPECT_EQ(simd::resolve_backend("avx2_int8"), Backend::kAvx2Int8);
  }
}

TEST(SimdDispatchDeathTest, UnknownValueExitsWithUsageError) {
  // An unknown DEEPCSI_SIMD must be a hard usage error (exit 2), never a
  // silent fallback that would mislabel every benchmark row. The message
  // must list every valid name (driven by the one backend table).
  EXPECT_EXIT(simd::resolve_backend("neon"), ::testing::ExitedWithCode(2),
              "DEEPCSI_SIMD=neon");
  EXPECT_EXIT(simd::resolve_backend("AVX2"), ::testing::ExitedWithCode(2),
              "unknown backend");
  EXPECT_EXIT(simd::resolve_backend("neon"), ::testing::ExitedWithCode(2),
              "\"scalar\".*\"avx2\".*\"avx2_int8\"");
}

TEST(SimdDispatchDeathTest, ExplicitAvx2OnUnsupportedHostExits) {
  if (avx2_available()) GTEST_SKIP() << "host can honor DEEPCSI_SIMD=avx2";
  EXPECT_EXIT(simd::resolve_backend("avx2"), ::testing::ExitedWithCode(2),
              "DEEPCSI_SIMD=avx2");
  // Same hard-error contract for the int8 backend: it needs the same
  // ISA, so an unhonorable explicit request must never degrade silently.
  EXPECT_EXIT(simd::resolve_backend("avx2_int8"), ::testing::ExitedWithCode(2),
              "DEEPCSI_SIMD=avx2_int8");
}

TEST(SimdDispatchTest, BackendNames) {
  EXPECT_STREQ(simd::name(Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::name(Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::name(Backend::kAvx2Int8), "avx2_int8");
  // The canonical name list covers every backend this build knows, in
  // enum order, whether or not this host can run them.
  const std::vector<const char*> names = simd::backend_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_STREQ(names[0], "scalar");
  EXPECT_STREQ(names[1], "avx2");
  EXPECT_STREQ(names[2], "avx2_int8");
}

TEST(SimdDispatchTest, AvailableBackendsIncludesInt8WithAvx2) {
  // avx2 and avx2_int8 have the same availability condition: both or
  // neither, with scalar always first.
  const std::vector<Backend> avail = simd::available_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Backend::kScalar);
  const bool has_avx2 =
      std::find(avail.begin(), avail.end(), Backend::kAvx2) != avail.end();
  const bool has_int8 =
      std::find(avail.begin(), avail.end(), Backend::kAvx2Int8) != avail.end();
  EXPECT_EQ(has_avx2, avx2_available());
  EXPECT_EQ(has_int8, avx2_available());
}

// ------------------------------------------------------- GEMM tolerance

struct GemmShape {
  std::size_t batch, m, n, k;
};

// Shapes straddle the 24/16/8-wide column tiles (n % 8 != 0
// remainders), the 4-row blocks (single-row edge), and the kKTile-deep
// (64) k tiles of nn/gemm.cc.
const GemmShape kGemmShapes[] = {
    {1, 1, 1, 1},    {1, 1, 7, 3},    {1, 3, 9, 31},   {1, 4, 16, 128},
    {1, 5, 17, 129}, {2, 6, 23, 64},  {1, 32, 59, 70}, {3, 7, 33, 257},
    {1, 13, 100, 45},
};

TEST(SimdGemmTest, Avx2MatchesScalarWithinToleranceOnRandomShapes) {
  if (!avx2_available()) GTEST_SKIP() << "avx2 backend unavailable";
  BackendGuard guard;
  for (const GemmShape& sh : kGemmShapes) {
    const auto a = random_vec(sh.m * sh.k, 101 + sh.k);
    const auto b = random_vec(sh.batch * sh.k * sh.n, 103 + sh.n);
    for (const bool accumulate : {false, true}) {
      auto c_scalar = random_vec(sh.batch * sh.m * sh.n, 107);
      auto c_avx2 = c_scalar;  // same initial garbage
      ASSERT_TRUE(simd::set_active(Backend::kScalar));
      nn::gemm_nn_batched(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(),
                          sh.k * sh.n, c_scalar.data(), sh.m * sh.n,
                          accumulate);
      ASSERT_TRUE(simd::set_active(Backend::kAvx2));
      nn::gemm_nn_batched(sh.batch, sh.m, sh.n, sh.k, a.data(), b.data(),
                          sh.k * sh.n, c_avx2.data(), sh.m * sh.n, accumulate);
      for (std::size_t e = 0; e < c_scalar.size(); ++e)
        ASSERT_NEAR(c_avx2[e], c_scalar[e],
                    5e-4 * (1.0 + std::abs(c_scalar[e])))
            << "nn m=" << sh.m << " n=" << sh.n << " k=" << sh.k
            << " acc=" << accumulate << " elem=" << e;
    }
  }
}

TEST(SimdGemmTest, Avx2DotMatchesScalarWithinTolerance) {
  if (!avx2_available()) GTEST_SKIP() << "avx2 backend unavailable";
  BackendGuard guard;
  for (const std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                              std::size_t{17}, std::size_t{224},
                              std::size_t{1601}}) {
    const auto a = random_vec(k, 211 + k);
    const auto b = random_vec(k, 223 + k);
    ASSERT_TRUE(simd::set_active(Backend::kScalar));
    const float ds = simd::ops().dot(a.data(), b.data(), k);
    ASSERT_TRUE(simd::set_active(Backend::kAvx2));
    const float dv = simd::ops().dot(a.data(), b.data(), k);
    EXPECT_NEAR(dv, ds, 5e-4 * (1.0 + std::abs(ds))) << "k=" << k;
  }
}

// ----------------------------------------------------------------- SELU

TEST(SimdSeluTest, Avx2MatchesStdExpReferenceIncludingTails) {
  if (!avx2_available()) GTEST_SKIP() << "avx2 backend unavailable";
  BackendGuard guard;
  ASSERT_TRUE(simd::set_active(Backend::kAvx2));
  // Lengths cover every remainder class mod 8, including the single-
  // element case; values cover both branches, the origin, and deep
  // saturation of the negative branch.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{30},
                              std::size_t{1013}}) {
    std::mt19937_64 rng(331 + n);
    std::normal_distribution<float> dist(0.0f, 3.0f);
    std::vector<float> x(n), y(n, -1e30f);
    for (float& v : x) v = dist(rng);
    if (n >= 4) {
      x[0] = 0.0f;
      x[1] = -100.0f;  // saturates: selu -> -lambda*alpha
      x[2] = 80.0f;
      x[3] = -0.0f;
    }
    simd::ops().selu(x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const float v = x[i];
      const double ref =
          v > 0.0f ? double(nn::kSeluLambda) * v
                   : double(nn::kSeluLambda) * nn::kSeluAlpha *
                         (std::exp(double(v)) - 1.0);
      ASSERT_NEAR(y[i], ref, 1e-5 * (1.0 + std::abs(ref)))
          << "n=" << n << " i=" << i << " x=" << v;
    }
  }
}

TEST(SimdSeluTest, ElementResultIndependentOfVectorPosition) {
  // The fused conv epilogue and the standalone layer slice the same data
  // at different offsets; an element's bits must not depend on where it
  // sits relative to a vector or chunk boundary, under either backend.
  BackendGuard guard;
  const std::size_t n = 67;
  const auto x = random_vec(n, 401);
  for (const Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    std::vector<float> whole(n);
    simd::ops().selu(x.data(), whole.data(), n);
    for (const std::size_t split : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}, std::size_t{13}}) {
      std::vector<float> pieces(n);
      std::size_t lo = 0;
      while (lo < n) {
        const std::size_t hi = std::min(n, lo + split);
        simd::ops().selu(x.data() + lo, pieces.data() + lo, hi - lo);
        lo = hi;
      }
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(whole[i], pieces[i])
            << simd::name(backend) << " split=" << split << " i=" << i;
    }
  }
}

TEST(SimdSeluTest, InPlaceApplicationMatchesOutOfPlace) {
  BackendGuard guard;
  const std::size_t n = 29;
  const auto x = random_vec(n, 409);
  for (const Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    std::vector<float> out(n);
    simd::ops().selu(x.data(), out.data(), n);
    std::vector<float> inplace = x;
    simd::ops().selu(inplace.data(), inplace.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], inplace[i]) << i;
  }
}

// ------------------------------------------------- rotation kernels

linalg::CMat random_cmat(std::size_t r, std::size_t c, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return linalg::CMat::random_gaussian(r, c, rng);
}

TEST(SimdRotationTest, Avx2GivensMatchesScalarAcrossGeometries) {
  if (!avx2_available()) GTEST_SKIP() << "avx2 backend unavailable";
  BackendGuard guard;
  // Rows/cols 1..5 cover the odd-length vector tails (cols=1 runs the
  // pure-scalar path, cols=3/5 the 2-wide body plus one complex tail).
  for (std::size_t rows = 2; rows <= 5; ++rows) {
    for (std::size_t cols = 1; cols <= 5; ++cols) {
      const linalg::CMat base = random_cmat(rows, cols, 500 + 10 * rows + cols);
      const double psi = 0.37 + 0.1 * double(rows) - 0.05 * double(cols);

      linalg::CMat scalar_left = base, avx2_left = base;
      ASSERT_TRUE(simd::set_active(Backend::kScalar));
      scalar_left.apply_givens_left(0, rows - 1, psi);
      ASSERT_TRUE(simd::set_active(Backend::kAvx2));
      avx2_left.apply_givens_left(0, rows - 1, psi);
      EXPECT_LT(linalg::max_abs_diff(scalar_left, avx2_left), 1e-12)
          << "left " << rows << "x" << cols;

      if (cols >= 2) {
        linalg::CMat scalar_right = base, avx2_right = base;
        ASSERT_TRUE(simd::set_active(Backend::kScalar));
        scalar_right.apply_givens_right(0, cols - 1, psi);
        ASSERT_TRUE(simd::set_active(Backend::kAvx2));
        avx2_right.apply_givens_right(0, cols - 1, psi);
        EXPECT_LT(linalg::max_abs_diff(scalar_right, avx2_right), 1e-12)
            << "right " << rows << "x" << cols;
      }

      const std::vector<double> phases = {0.3, -1.2};
      linalg::CMat scalar_rows = base, avx2_rows = base;
      linalg::CMat scalar_cols = base, avx2_cols = base;
      ASSERT_TRUE(simd::set_active(Backend::kScalar));
      scalar_rows.scale_rows_polar(0, phases);
      if (cols >= 2) scalar_cols.scale_cols_polar(0, phases);
      ASSERT_TRUE(simd::set_active(Backend::kAvx2));
      avx2_rows.scale_rows_polar(0, phases);
      if (cols >= 2) avx2_cols.scale_cols_polar(0, phases);
      EXPECT_LT(linalg::max_abs_diff(scalar_rows, avx2_rows), 1e-12)
          << "rows_polar " << rows << "x" << cols;
      if (cols >= 2) {
        EXPECT_LT(linalg::max_abs_diff(scalar_cols, avx2_cols), 1e-12)
            << "cols_polar " << rows << "x" << cols;
      }
    }
  }
}

// ------------------------------------- threaded selu layer determinism

TEST(SimdSeluTest, ThreadedSeluApplyBitIdenticalAcrossThreadCounts) {
  // selu_apply now fans out over the pool (it used to be the one serial
  // stage between parallel GEMMs); the existing bit-identity-across-
  // DEEPCSI_THREADS guarantee must survive under both backends.
  ThreadGuard tguard;
  BackendGuard bguard;
  nn::Tensor x({5, 3, 1, 67});
  std::mt19937_64 rng(777);
  std::normal_distribution<float> dist(0.0f, 2.0f);
  for (std::size_t i = 0; i < x.numel(); ++i) x.data()[i] = dist(rng);
  for (const Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    nn::Selu selu;
    common::set_num_threads(1);
    const nn::Tensor y1 = selu.forward(x, /*training=*/false);
    common::set_num_threads(4);
    const nn::Tensor y4 = selu.forward(x, /*training=*/false);
    for (std::size_t i = 0; i < y1.numel(); ++i)
      ASSERT_EQ(y1[i], y4[i]) << simd::name(backend) << " i=" << i;
  }
}

}  // namespace
}  // namespace deepcsi
