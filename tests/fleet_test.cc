// Fleet driver: the template-pooled scale generator must be a pure
// function of its config (bit-identical reports across instances and
// runs), model its scenario knobs (mobility churn, cross-beamformee
// confusion) observably, and soak a bounded AuthService end to end with
// survivor verdicts bit-identical to an unbounded run.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/model.h"
#include "core/pipeline.h"
#include "dataset/features.h"
#include "feedback/bitpack.h"
#include "serving/fleet.h"
#include "serving/service.h"

namespace deepcsi {
namespace {

using serving::FleetConfig;
using serving::FleetGenerator;
using serving::FleetRunStats;

// Small pool, real pipeline: 3 modules x 2 positions x 2 classes.
FleetConfig small_fleet(std::uint64_t stations) {
  FleetConfig fc;
  fc.stations = stations;
  fc.reports_per_station = 2;
  fc.modules = 3;
  fc.positions = 2;
  fc.station_classes = 2;
  fc.mobile_fraction = 0.2;
  fc.seed = 23;
  return fc;
}

core::Authenticator make_authenticator() {
  const dataset::InputSpec spec;
  return core::Authenticator(
      core::build_deepcsi_model(
          dataset::num_input_channels(spec),
          static_cast<int>(dataset::num_input_columns(spec)),
          phy::kNumModules, core::quick_model_config()),
      spec);
}

TEST(FleetTest, ReportsAreAPureFunctionOfConfig) {
  const FleetConfig fc = small_fleet(50);
  const FleetGenerator a(fc);
  const FleetGenerator b(fc);
  ASSERT_EQ(a.num_templates(), 12u);  // 3 x 2 x 2 x 1
  for (const std::uint64_t s : {0ull, 7ull, 49ull}) {
    for (std::size_t j = 0; j < fc.reports_per_station; ++j) {
      const capture::ObservedFeedback ra = a.report(s, j);
      const capture::ObservedFeedback rb = b.report(s, j);
      EXPECT_EQ(ra.beamformee, rb.beamformee);
      EXPECT_EQ(ra.beamformer, rb.beamformer);
      EXPECT_EQ(ra.timestamp_s, rb.timestamp_s);
      EXPECT_EQ(feedback::pack_report(ra.report),
                feedback::pack_report(rb.report));
    }
  }
}

TEST(FleetTest, StationsAreDistinctAndCarryTheirGroundTruthModule) {
  const FleetConfig fc = small_fleet(64);
  const FleetGenerator gen(fc);
  std::map<std::uint64_t, bool> macs;
  for (std::uint64_t s = 0; s < fc.stations; ++s) {
    const capture::ObservedFeedback obs = gen.report(s, 0);
    EXPECT_FALSE(macs.count(obs.beamformee.to_u64())) << "MAC collision";
    macs[obs.beamformee.to_u64()] = true;
    EXPECT_EQ(gen.expected_module(s),
              static_cast<int>(s % static_cast<std::uint64_t>(fc.modules)));
    // Round 0 always transmits the ground-truth module's fingerprint.
    EXPECT_EQ(obs.beamformer,
              capture::MacAddress::for_module(gen.expected_module(s)));
  }
}

TEST(FleetTest, TimestampsAdvanceInStreamTimePerStation) {
  const FleetConfig fc = small_fleet(10);
  const FleetGenerator gen(fc);
  for (std::uint64_t s = 0; s < fc.stations; ++s) {
    const double t0 = gen.report(s, 0).timestamp_s;
    const double t1 = gen.report(s, 1).timestamp_s;
    EXPECT_GE(t0, 0.0);
    EXPECT_NEAR(t1 - t0, fc.report_interval_s, 1e-12);
  }
}

TEST(FleetTest, ConfusedStationsInterleaveTheNeighbourModule) {
  FleetConfig fc = small_fleet(30);
  fc.confusion_fraction = 1.0;  // every station is confused
  const FleetGenerator gen(fc);
  for (std::uint64_t s = 0; s < fc.stations; ++s) {
    ASSERT_TRUE(gen.is_confused(s));
    const int truth = gen.expected_module(s);
    // Even rounds carry the true module, odd rounds the neighbour — the
    // cross-beamformee contamination the paper's figs 9-11 study.
    EXPECT_EQ(gen.report(s, 0).beamformer,
              capture::MacAddress::for_module(truth));
    EXPECT_EQ(gen.report(s, 1).beamformer,
              capture::MacAddress::for_module((truth + 1) % fc.modules));
  }
}

TEST(FleetTest, MobileStationsChurnTheirTemplateStaticOnesDoNot) {
  FleetConfig fc = small_fleet(40);
  fc.mobile_fraction = 1.0;
  fc.reports_per_station = 2;
  const FleetGenerator mobile_gen(fc);
  fc.mobile_fraction = 0.0;
  const FleetGenerator static_gen(fc);

  std::size_t moved = 0;
  for (std::uint64_t s = 0; s < fc.stations; ++s) {
    // Static: both reports come from the same (module, position, class)
    // template (snapshots_per_template=1 keeps the snapshot draw fixed).
    EXPECT_EQ(feedback::pack_report(static_gen.report(s, 0).report),
              feedback::pack_report(static_gen.report(s, 1).report));
    if (feedback::pack_report(mobile_gen.report(s, 0).report) !=
        feedback::pack_report(mobile_gen.report(s, 1).report))
      ++moved;
  }
  // Every mobile station steps the position grid each round; with 2
  // positions that is a different template every time.
  EXPECT_EQ(moved, fc.stations);
}

// 200 distinct stations x 2 rounds against a 64-entry ceiling: the
// service must accept everything, hold occupancy at the ceiling, and
// evict under LRU pressure — the bounded-memory half of the acceptance
// bar, end to end through ingest -> scheduler -> sessions.
TEST(FleetTest, BoundedServiceHoldsTheCeilingUnderFleetPressure) {
  const core::Authenticator auth = make_authenticator();
  const FleetConfig fc = small_fleet(200);
  const FleetGenerator gen(fc);

  serving::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.scheduler.max_batch = 16;
  cfg.consumers = 2;
  cfg.sessions.window = 5;
  cfg.sessions.num_shards = 4;
  cfg.sessions.max_stations = 64;
  serving::AuthService service(auth, cfg);
  const FleetRunStats fr = serving::run_fleet(service, gen, /*producers=*/3);
  EXPECT_EQ(fr.offered, 400u);   // 200 stations x 2 reports
  EXPECT_EQ(fr.accepted, 400u);  // kBlock never drops

  const serving::StatsSnapshot s = service.stats();
  EXPECT_EQ(s.reports_classified, 400u);
  EXPECT_LE(s.sessions.stations, s.sessions.station_ceiling);
  EXPECT_EQ(s.sessions.station_ceiling, 64u);
  EXPECT_GT(s.sessions.evicted_lru, 0u);  // 200 distinct vs 64-entry cap
  EXPECT_LE(s.sessions.approx_bytes,
            64u * serving::SessionTable::session_footprint_bytes(
                      cfg.sessions.window));
}

// The determinism half: stations still resident in a bounded service
// (never evicted — a single-round fleet cannot be reborn) must carry
// verdicts bit-identical to an unbounded service with different shard,
// lane, consumer, and producer counts.
TEST(FleetTest, ResidentVerdictsAreBitIdenticalToAnUnboundedService) {
  const core::Authenticator auth = make_authenticator();
  FleetConfig fc = small_fleet(200);
  fc.reports_per_station = 1;  // no rebirth: residents == never-evicted
  const FleetGenerator gen(fc);

  serving::ServiceConfig bounded_cfg;
  bounded_cfg.queue_capacity = 256;
  bounded_cfg.scheduler.max_batch = 16;
  bounded_cfg.consumers = 2;
  bounded_cfg.sessions.window = 5;
  bounded_cfg.sessions.num_shards = 4;
  bounded_cfg.sessions.max_stations = 64;
  serving::AuthService bounded(auth, bounded_cfg);
  serving::run_fleet(bounded, gen, /*producers=*/3);

  serving::ServiceConfig unbounded_cfg = bounded_cfg;
  unbounded_cfg.sessions.max_stations = 0;
  unbounded_cfg.sessions.num_shards = 16;  // different shard AND lane count
  unbounded_cfg.consumers = 1;
  serving::AuthService unbounded(auth, unbounded_cfg);
  serving::run_fleet(unbounded, gen, /*producers=*/1);

  std::map<std::uint64_t, serving::StationVerdict> ref;
  for (const serving::StationVerdict& v : unbounded.sessions().snapshot())
    ref[v.station.to_u64()] = v;
  ASSERT_EQ(ref.size(), 200u);

  const std::vector<serving::StationVerdict> residents =
      bounded.sessions().snapshot();
  ASSERT_EQ(residents.size(), 64u);  // ceiling reached, never exceeded
  for (const serving::StationVerdict& v : residents) {
    const serving::StationVerdict& r = ref.at(v.station.to_u64());
    EXPECT_EQ(v.module_id, r.module_id);
    EXPECT_EQ(v.votes, r.votes);
    EXPECT_EQ(v.window_size, r.window_size);
    EXPECT_EQ(v.total_reports, r.total_reports);
    EXPECT_EQ(v.mean_confidence, r.mean_confidence);  // bit-exact
    EXPECT_EQ(v.last_timestamp_s, r.last_timestamp_s);
  }
}

}  // namespace
}  // namespace deepcsi
