// Model lifecycle: RCU hot swap (typed errors, rollback counters, and
// bit-exact serving across 100 swap cycles under concurrent classify
// load), the load_model_artifact trio loader, the shadow scorer, and the
// per-station drift EWMA. The concurrency test is the TSan acceptance
// gate for the zero-downtime contract: swaps never block classifies and
// classifies never block swaps.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "capture/mac.h"
#include "common/failpoint.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "dataset/features.h"
#include "dataset/traces.h"
#include "phy/impairments.h"
#include "serving/service.h"
#include "serving/session_table.h"
#include "serving/shadow.h"

namespace deepcsi {
namespace {

using common::failpoints::ScopedSpec;
using core::Authenticator;
using core::ModelLoadStatus;

core::Authenticator make_authenticator(const dataset::InputSpec& spec) {
  return core::Authenticator(
      core::build_deepcsi_model(
          dataset::num_input_channels(spec),
          static_cast<int>(dataset::num_input_columns(spec)),
          phy::kNumModules, core::quick_model_config()),
      spec);
}

std::vector<feedback::CompressedFeedbackReport> make_reports() {
  const dataset::Scale scale{3, 3, 4};
  std::vector<feedback::CompressedFeedbackReport> reports;
  for (int module : {0, 1, 2}) {
    const dataset::Trace trace =
        dataset::generate_d1_trace(module, 1, 0, scale, {});
    for (const dataset::Snapshot& s : trace.snapshots)
      reports.push_back(s.report);
  }
  return reports;
}

// Persist the full deployable trio (weights + authoritative .meta) the
// way `deepcsi train` does, so swap_model can reload it.
std::string save_artifact(const core::Authenticator& auth, const char* name) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  auth.save(path);
  core::save_model_meta(
      path, {{"filters", core::quick_model_config().filters},
             {"stride", auth.input_spec().subcarrier_stride},
             {"classes", phy::kNumModules}});
  return path;
}

void remove_artifact(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".meta").c_str());
}

// ------------------------------------------------------- swap semantics

TEST(LifecycleTest, SwapToIdenticalWeightsKeepsPredictionsBitExact) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  core::Authenticator auth = make_authenticator(spec);
  const auto reports = make_reports();
  const auto before = auth.classify_batch(reports);
  EXPECT_EQ(auth.epoch(), 1u);

  const std::string path = save_artifact(auth, "swap-identical.model");
  const auto r = auth.swap_model(path);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_EQ(auth.epoch(), 2u);
  EXPECT_EQ(auth.swaps_completed(), 1u);
  EXPECT_EQ(auth.swaps_rolled_back(), 0u);

  // Same weights on the new epoch: every prediction is bit-identical.
  const auto after = auth.classify_batch(reports);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].module_id, before[i].module_id) << i;
    EXPECT_EQ(after[i].confidence, before[i].confidence) << i;
  }
  remove_artifact(path);
}

TEST(LifecycleTest, EveryFailureModeRollsBackAndKeepsServingTheIncumbent) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  core::Authenticator auth = make_authenticator(spec);
  const auto reports = make_reports();
  const auto before = auth.classify_batch(reports);
  const std::string good = save_artifact(auth, "swap-rollback.model");

  // 1. Missing weights file -> kLoadError.
  {
    const auto r = auth.swap_model(std::string(::testing::TempDir()) +
                                   "/no-such.model");
    EXPECT_EQ(r.status, Authenticator::SwapStatus::kLoadError);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(r.epoch, 1u);
  }
  // 2. A .meta whose geometry disagrees with the serving spec ->
  //    kSpecMismatch, diagnostic naming both specs.
  {
    const std::string bad = std::string(::testing::TempDir()) +
                            "/swap-badspec.model";
    auth.save(bad);
    core::save_model_meta(bad,
                          {{"filters", core::quick_model_config().filters},
                           {"stride", 8},
                           {"classes", phy::kNumModules}});
    const auto r = auth.swap_model(bad);
    EXPECT_EQ(r.status, Authenticator::SwapStatus::kSpecMismatch);
    EXPECT_NE(r.error.find("stride=8"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("stride=4"), std::string::npos) << r.error;
    remove_artifact(bad);
  }
  // 3. Injected load failure (the chaos site) -> kLoadError.
  {
    ScopedSpec fp("model.load=err(EIO,n=1)");
    const auto r = auth.swap_model(good);
    EXPECT_EQ(r.status, Authenticator::SwapStatus::kLoadError);
    EXPECT_NE(r.error.find("injected"), std::string::npos) << r.error;
  }
  // 4. Injected abort between staging and publish -> kAborted.
  {
    ScopedSpec fp("model.swap=reject(n=1)");
    const auto r = auth.swap_model(good);
    EXPECT_EQ(r.status, Authenticator::SwapStatus::kAborted);
  }

  // Four failures, four rollbacks, zero published epochs — and the
  // incumbent still serves the exact same predictions.
  EXPECT_EQ(auth.epoch(), 1u);
  EXPECT_EQ(auth.swaps_completed(), 0u);
  EXPECT_EQ(auth.swaps_rolled_back(), 4u);
  const auto after = auth.classify_batch(reports);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].module_id, before[i].module_id);
    EXPECT_EQ(after[i].confidence, before[i].confidence);
  }
  // A later valid swap still works: rollback poisons nothing.
  EXPECT_TRUE(auth.swap_model(good).ok());
  EXPECT_EQ(auth.epoch(), 2u);
  remove_artifact(good);
}

// The acceptance gate: 100 swap cycles while several threads classify
// continuously. Zero failed classifies, zero mismatched predictions
// (same weights both sides of every swap), every swap publishes.
TEST(LifecycleTest, HundredSwapCyclesUnderConcurrentClassifyLoad) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  core::Authenticator auth = make_authenticator(spec);
  const auto reports = make_reports();
  const auto baseline = auth.classify_batch(reports);
  const std::string a = save_artifact(auth, "swap-cycle-a.model");
  const std::string b = save_artifact(auth, "swap-cycle-b.model");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> classified{0};
  std::atomic<std::uint64_t> mismatched{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto got = auth.classify_batch(reports);
        for (std::size_t i = 0; i < baseline.size(); ++i)
          if (got[i].module_id != baseline[i].module_id ||
              got[i].confidence != baseline[i].confidence)
            mismatched.fetch_add(1, std::memory_order_relaxed);
        classified.fetch_add(got.size(), std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t published = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    const auto r = auth.swap_model(cycle % 2 == 0 ? b : a);
    ASSERT_TRUE(r.ok()) << "cycle " << cycle << ": " << r.error;
    ++published;
    EXPECT_EQ(r.epoch, 1u + published);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  EXPECT_EQ(auth.epoch(), 101u);
  EXPECT_EQ(auth.swaps_completed(), 100u);
  EXPECT_EQ(auth.swaps_rolled_back(), 0u);
  EXPECT_EQ(mismatched.load(), 0u);
  EXPECT_GT(classified.load(), 0u);
  remove_artifact(a);
  remove_artifact(b);
}

// ------------------------------------------------- load_model_artifact

TEST(LifecycleTest, ArtifactLoaderHonorsTheMetaSidecar) {
  // The .meta keys are authoritative: a 7-class model round-trips through
  // the loader without the caller re-passing any architecture flags.
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  core::Authenticator seven(
      core::build_deepcsi_model(
          dataset::num_input_channels(spec),
          static_cast<int>(dataset::num_input_columns(spec)), 7,
          core::quick_model_config()),
      spec);
  const std::string path =
      std::string(::testing::TempDir()) + "/seven-class.model";
  seven.save(path);
  core::save_model_meta(path,
                        {{"filters", core::quick_model_config().filters},
                         {"stride", 4},
                         {"classes", 7}});

  core::LoadedModel lm;
  std::string err;
  ASSERT_EQ(core::load_model_artifact(path, spec, core::quick_model_config(),
                                      &lm, &err),
            ModelLoadStatus::kOk)
      << err;
  EXPECT_EQ(lm.num_classes, 7);
  EXPECT_EQ(lm.spec.subcarrier_stride, 4);
  ASSERT_TRUE(lm.model.has_value());
  EXPECT_FALSE(lm.calibration.has_value());  // no .calib sidecar written

  // A nonsensical sidecar is an IO error, not a crash or a zero-filter
  // model.
  core::save_model_meta(path, {{"filters", 0}});
  EXPECT_EQ(core::load_model_artifact(path, spec, core::quick_model_config(),
                                      &lm, &err),
            ModelLoadStatus::kIoError);
  remove_artifact(path);
}

// ------------------------------------------------------- shadow scoring

serving::PendingReport pending(int station,
                               const feedback::CompressedFeedbackReport& r,
                               double t) {
  serving::PendingReport p;
  p.station = capture::MacAddress::for_station(station);
  p.timestamp_s = t;
  p.report = r;
  return p;
}

TEST(LifecycleTest, ShadowScorerSamplesOneInN) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const auto reports = make_reports();
  serving::ShadowConfig cfg;
  cfg.sample_every = 4;
  serving::ShadowScorer scorer(make_authenticator(spec), cfg);
  for (int i = 0; i < 40; ++i)
    scorer.observe(pending(i % 3, reports[i % reports.size()], 0.01 * i),
                   {0, 0.5});
  scorer.stop();
  const auto s = scorer.stats();
  EXPECT_TRUE(s.present);
  EXPECT_EQ(s.sampled, 10u);  // every 4th observe, starting with the first
}

TEST(LifecycleTest, ShadowScorerCountsDivergenceAndPromotes) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const auto reports = make_reports();
  serving::ShadowConfig cfg;
  cfg.sample_every = 1;
  cfg.max_divergence = 0.5;
  cfg.min_samples = 8;
  serving::ShadowScorer scorer(make_authenticator(spec), cfg);

  // The candidate is deterministic, so feeding ITS OWN prediction as the
  // "primary" verdict controls divergence exactly: agree on stations
  // 0..3, force disagreement on stations 4..5.
  int fed = 0;
  for (int station = 0; station < 6; ++station) {
    for (int k = 0; k < 2; ++k) {
      const auto& r = reports[static_cast<std::size_t>(fed) % reports.size()];
      auto primary = scorer.candidate().classify(r);
      if (station >= 4)
        primary.module_id = (primary.module_id + 1) % phy::kNumModules;
      scorer.observe(pending(station, r, 0.01 * fed), primary);
      ++fed;
    }
  }
  // 12 sampled, 4 diverged (stations 4 and 5, twice each): fraction 1/3
  // is under the 0.5 gate with >= 8 samples, so the candidate qualifies.
  // stop() first: it drains the queue and joins the scorer thread, so
  // the counters below are the final tallies rather than a snapshot
  // racing the async scorer (live serve polls promotable() eventually-
  // consistently; this test needs the exact counts).
  scorer.stop();
  EXPECT_TRUE(scorer.promotable());
  EXPECT_FALSE(scorer.promoted());
  scorer.mark_promoted();
  EXPECT_TRUE(scorer.promoted());
  EXPECT_FALSE(scorer.promotable());  // offered exactly once

  const auto s = scorer.stats();
  EXPECT_EQ(s.sampled, 12u);
  EXPECT_EQ(s.diverged, 4u);
  EXPECT_EQ(s.stations_diverging, 2u);
  EXPECT_TRUE(s.promoted);
  // Where primary == candidate the confidence delta is exactly zero; the
  // forced divergences only changed module ids, not confidences.
  EXPECT_EQ(s.mean_confidence_delta, 0.0);
}

TEST(LifecycleTest, ShadowPromotionDisabledByDefault) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const auto reports = make_reports();
  serving::ShadowConfig cfg;  // max_divergence < 0: measurement only
  cfg.sample_every = 1;
  cfg.min_samples = 1;
  serving::ShadowScorer scorer(make_authenticator(spec), cfg);
  for (int i = 0; i < 8; ++i) {
    const auto& r = reports[static_cast<std::size_t>(i) % reports.size()];
    scorer.observe(pending(0, r, 0.01 * i), scorer.candidate().classify(r));
  }
  scorer.stop();
  EXPECT_GE(scorer.stats().sampled, 1u);
  EXPECT_FALSE(scorer.promotable());
}

// ------------------------------------------------------------ drift EWMA

TEST(LifecycleTest, DriftEwmaFlagsRecoversAndResets) {
  serving::SessionConfig cfg;
  cfg.window = 5;
  cfg.drift_alpha = 0.5;
  cfg.drift_threshold = 0.6;
  cfg.drift_min_reports = 3;
  serving::SessionTable table(cfg);
  const auto mac = capture::MacAddress::for_station(0);
  const auto feed_conf = [&](double conf, double t) {
    core::Authenticator::Prediction p;
    p.module_id = 1;
    p.confidence = conf;
    table.record(mac, p, t);
  };

  // Two low-confidence reports: EWMA is already under the threshold but
  // min_reports keeps the flag down — no alarm off a cold start.
  feed_conf(0.3, 0.0);
  feed_conf(0.3, 0.1);
  EXPECT_FALSE(table.snapshot()[0].drifting);
  EXPECT_EQ(table.stats().stations_drifting, 0u);
  // Third report crosses min_reports: flagged.
  feed_conf(0.3, 0.2);
  EXPECT_TRUE(table.snapshot()[0].drifting);
  EXPECT_EQ(table.stats().stations_drifting, 1u);
  EXPECT_EQ(table.snapshot()[0].confidence_ewma, 0.3);  // seeded, constant

  // Confidence recovers: with alpha=0.5 two reports at 0.95 pull the EWMA
  // over 0.6 and the flag clears — drift is a condition, not a latch.
  feed_conf(0.95, 0.3);
  feed_conf(0.95, 0.4);
  EXPECT_FALSE(table.snapshot()[0].drifting);
  EXPECT_EQ(table.stats().stations_drifting, 0u);

  // Back under, then a model swap: reset_drift() re-warms from zero, so
  // the new model is judged on its own confidences only.
  for (int i = 0; i < 6; ++i) feed_conf(0.2, 0.5 + 0.1 * i);
  EXPECT_TRUE(table.snapshot()[0].drifting);
  table.reset_drift();
  EXPECT_FALSE(table.snapshot()[0].drifting);
  EXPECT_EQ(table.snapshot()[0].confidence_ewma, 0.0);
  EXPECT_EQ(table.stats().stations_drifting, 0u);
  // Windows and counters were untouched by the reset.
  EXPECT_EQ(table.snapshot()[0].total_reports, 11u);
}

// ------------------------------------------- service-level integration

TEST(LifecycleTest, ServiceStatsCarryLifecycleCountersAndShadowTapFires) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  core::Authenticator auth = make_authenticator(spec);
  const auto reports = make_reports();

  serving::ServiceConfig cfg;
  cfg.queue_capacity = 64;
  cfg.consumers = 2;
  serving::AuthService service(auth, cfg);
  std::atomic<std::uint64_t> tapped{0};
  service.set_shadow_callback(
      [&](const serving::PendingReport&,
          const core::Authenticator::Prediction&) {
        tapped.fetch_add(1, std::memory_order_relaxed);
      });
  service.start();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    capture::ObservedFeedback obs;
    obs.timestamp_s = 0.01 * static_cast<double>(i);
    obs.beamformee = capture::MacAddress::for_station(static_cast<int>(i % 3));
    obs.beamformer = capture::MacAddress::for_module(0);
    obs.report = reports[i];
    ASSERT_TRUE(service.submit(obs));
  }
  service.drain();
  // Every classified report passed through the shadow tap exactly once.
  EXPECT_EQ(tapped.load(), reports.size());

  auto snap = service.stats();
  EXPECT_EQ(snap.lifecycle.epoch, 1u);
  EXPECT_EQ(snap.lifecycle.swaps_completed, 0u);

  const std::string path = save_artifact(auth, "service-swap.model");
  ASSERT_TRUE(auth.swap_model(path).ok());
  service.on_model_swapped();  // epoch-local drift state resets
  snap = service.stats();
  EXPECT_EQ(snap.lifecycle.epoch, 2u);
  EXPECT_EQ(snap.lifecycle.swaps_completed, 1u);
  EXPECT_EQ(snap.lifecycle.swaps_rolled_back, 0u);
  EXPECT_EQ(service.sessions().stats().stations_drifting, 0u);
  remove_artifact(path);
}

}  // namespace
}  // namespace deepcsi
