// In-process loopback end-to-end: NetClient -> TcpIngestServer ->
// AuthService -> SessionTable -> VerdictPublisher -> VerdictSubscriber,
// plus the ingest server's backpressure mapping (kWouldBlock pauses the
// socket, kRejected counts a drop) and connection-limit/malformed-peer
// handling — all without forking processes, so the sanitizer and TSan
// legs see every thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "capture/monitor.h"
#include "common/hash.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "dataset/features.h"
#include "dataset/traces.h"
#include "net/client.h"
#include "net/ingest_server.h"
#include "net/protocol.h"
#include "net/publisher.h"
#include "serving/service.h"

namespace deepcsi {
namespace {

using namespace std::chrono_literals;

capture::ObservedFeedback sample_observed(int module, double timestamp_s) {
  dataset::Scale scale;
  scale.d1_snapshots_per_trace = 1;
  const dataset::Trace trace =
      dataset::generate_d1_trace(module, 1, 0, scale, {});
  capture::ObservedFeedback obs;
  obs.timestamp_s = timestamp_s;
  obs.beamformee = capture::MacAddress::for_station(module);
  obs.beamformer = capture::MacAddress::for_module(module);
  obs.report = trace.snapshots.front().report;
  return obs;
}

// Spin-wait with timeout for a server-side condition (loopback delivery
// is asynchronous; never assert immediately on a counter).
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// ------------------------------------------------- ingest server semantics

// A submit sink with a controllable gate, standing in for the service:
// while closed it reports kWouldBlock (full kBlock queue), so the pause +
// park + retry machinery is exercised deterministically.
struct GatedSink {
  std::mutex mu;
  std::vector<capture::ObservedFeedback> delivered;
  std::atomic<bool> open{true};

  common::PushStatus operator()(capture::ObservedFeedback& obs) {
    if (!open.load()) return common::PushStatus::kWouldBlock;
    std::lock_guard<std::mutex> lock(mu);
    delivered.push_back(std::move(obs));
    return common::PushStatus::kAccepted;
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return delivered.size();
  }
};

TEST(NetIngestTest, WouldBlockPausesTheConnectionThenRecoversInOrder) {
  auto sink = std::make_shared<GatedSink>();
  sink->open = false;  // queue "full" from the start
  net::TcpIngestServer server(
      {}, [sink](capture::ObservedFeedback& obs) { return (*sink)(obs); });
  server.start();

  auto client = net::NetClient::connect("127.0.0.1", server.port());
  constexpr int kReports = 20;
  for (int i = 0; i < kReports; ++i) {
    capture::ObservedFeedback obs = sample_observed(0, static_cast<double>(i));
    ASSERT_TRUE(client.send_report(obs));
  }

  // The first decode hits kWouldBlock: the report parks, EPOLLIN goes
  // off, and NOTHING is delivered while the queue stays full.
  ASSERT_TRUE(eventually([&] { return server.stats().pauses >= 1; }));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(sink->count(), 0u);

  // Open the gate: the retry tick resubmits the parked report, EPOLLIN
  // re-arms, and the backlog drains — in exactly the order it was sent.
  sink->open = true;
  ASSERT_TRUE(eventually([&] { return sink->count() == kReports; }));
  for (int i = 0; i < kReports; ++i)
    EXPECT_EQ(sink->delivered[static_cast<std::size_t>(i)].timestamp_s,
              static_cast<double>(i));
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().reports_dropped, 0u);
}

TEST(NetIngestTest, RejectedReportsAreCountedDropsAndTheStreamContinues) {
  // Reject every second report — the kReject policy seen from the edge.
  std::atomic<int> seen{0};
  auto sink = std::make_shared<GatedSink>();
  net::TcpIngestServer server(
      {}, [sink, &seen](capture::ObservedFeedback& obs) {
        if (seen.fetch_add(1) % 2 == 1)
          return common::PushStatus::kRejected;
        return (*sink)(obs);
      });
  server.start();

  auto client = net::NetClient::connect("127.0.0.1", server.port());
  constexpr int kReports = 10;
  for (int i = 0; i < kReports; ++i) {
    capture::ObservedFeedback obs = sample_observed(0, static_cast<double>(i));
    ASSERT_TRUE(client.send_report(obs));
  }
  ASSERT_TRUE(eventually(
      [&] { return sink->count() + server.stats().reports_dropped >= kReports; }));
  const net::IngestStats stats = server.stats();
  EXPECT_EQ(sink->count(), 5u);
  EXPECT_EQ(stats.reports_dropped, 5u);
  EXPECT_EQ(stats.protocol_errors, 0u);  // the connection survived
  // Evens got through, in order.
  for (std::size_t i = 0; i < sink->delivered.size(); ++i)
    EXPECT_EQ(sink->delivered[i].timestamp_s, static_cast<double>(2 * i));
  client.close();
  server.stop();
}

TEST(NetIngestTest, MalformedStreamClosesTheConnectionWithoutCrashing) {
  auto sink = std::make_shared<GatedSink>();
  net::TcpIngestServer server(
      {}, [sink](capture::ObservedFeedback& obs) { return (*sink)(obs); });
  server.start();

  // A valid report, then garbage: the report lands, the garbage kills the
  // connection, counted as a protocol error.
  auto client = net::NetClient::connect("127.0.0.1", server.port());
  capture::ObservedFeedback obs = sample_observed(0, 1.0);
  ASSERT_TRUE(client.send_report(obs));
  const std::vector<std::uint8_t> junk(64, 0xEE);
  ASSERT_TRUE(client.send_bytes(std::span<const std::uint8_t>(junk.data(),
                                                              junk.size())));
  ASSERT_TRUE(eventually([&] { return server.stats().protocol_errors == 1; }));
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_TRUE(eventually([&] { return server.stats().conns_open == 0; }));

  // A well-framed frame with an undecodable payload is milder: counted,
  // skipped, connection stays up.
  auto client2 = net::NetClient::connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> empty_payload;
  const auto bad = net::encode_frame(
      net::FrameType::kFeedbackReport,
      std::span<const std::uint8_t>(empty_payload.data(), 0));
  ASSERT_TRUE(client2.send_bytes(std::span<const std::uint8_t>(bad.data(),
                                                               bad.size())));
  ASSERT_TRUE(
      eventually([&] { return server.stats().malformed_payloads == 1; }));
  // Unknown frame types pass through harmlessly too (forward compat).
  const auto unknown = net::encode_frame(
      static_cast<net::FrameType>(200),
      std::span<const std::uint8_t>(empty_payload.data(), 0));
  ASSERT_TRUE(client2.send_bytes(
      std::span<const std::uint8_t>(unknown.data(), unknown.size())));
  capture::ObservedFeedback obs2 = sample_observed(1, 2.0);
  ASSERT_TRUE(client2.send_report(obs2));
  ASSERT_TRUE(eventually([&] { return sink->count() == 2u; }));
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  client2.close();
  server.stop();
}

TEST(NetIngestTest, ConnectionsBeyondMaxConnsAreRefused) {
  net::IngestConfig cfg;
  cfg.max_conns = 1;
  auto sink = std::make_shared<GatedSink>();
  net::TcpIngestServer server(
      cfg, [sink](capture::ObservedFeedback& obs) { return (*sink)(obs); });
  server.start();

  auto keeper = net::NetClient::connect("127.0.0.1", server.port());
  capture::ObservedFeedback obs = sample_observed(0, 1.0);
  ASSERT_TRUE(keeper.send_report(obs));
  ASSERT_TRUE(eventually([&] { return sink->count() == 1u; }));

  auto refused = net::NetClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(eventually([&] { return server.stats().conns_rejected == 1; }));
  // The refused socket was closed server-side; the survivor still works.
  capture::ObservedFeedback obs2 = sample_observed(1, 2.0);
  ASSERT_TRUE(keeper.send_report(obs2));
  ASSERT_TRUE(eventually([&] { return sink->count() == 2u; }));
  refused.close();
  keeper.close();
  server.stop();
}

// ------------------------------------------------------- full loopback e2e

core::Authenticator quick_authenticator(const dataset::InputSpec& spec) {
  return core::Authenticator(
      core::build_deepcsi_model(
          dataset::num_input_channels(spec),
          static_cast<int>(dataset::num_input_columns(spec)),
          phy::kNumModules, core::quick_model_config()),
      spec);
}

// `stations` beamformees, station s streaming module-(s % kNumModules)
// reports, interleaved frame by frame.
std::vector<capture::ObservedFeedback> multi_station_stream(int stations,
                                                            int snapshots) {
  dataset::Scale scale;
  scale.d1_snapshots_per_trace = snapshots;
  std::vector<std::vector<feedback::CompressedFeedbackReport>> per_station;
  for (int s = 0; s < stations; ++s) {
    const dataset::Trace trace =
        dataset::generate_d1_trace(s % phy::kNumModules, 1, 0, scale, {});
    std::vector<feedback::CompressedFeedbackReport> reports;
    for (const dataset::Snapshot& snap : trace.snapshots)
      reports.push_back(snap.report);
    per_station.push_back(std::move(reports));
  }
  std::vector<capture::ObservedFeedback> stream;
  double t = 0.0;
  for (int i = 0; i < snapshots; ++i) {
    for (int s = 0; s < stations; ++s) {
      capture::ObservedFeedback obs;
      obs.timestamp_s = t;
      obs.beamformee = capture::MacAddress::for_station(s);
      obs.beamformer =
          capture::MacAddress::for_module(s % phy::kNumModules);
      obs.report = per_station[static_cast<std::size_t>(s)]
                               [static_cast<std::size_t>(i)];
      stream.push_back(std::move(obs));
      t += 0.01;
    }
  }
  return stream;
}

TEST(NetE2ETest, LoopbackVerdictsMatchTheOfflinePipelineExactly) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = quick_authenticator(spec);
  const auto stream = multi_station_stream(4, 5);

  serving::ServiceConfig cfg;
  cfg.queue_capacity = 64;
  cfg.consumers = 2;
  cfg.scheduler.max_batch = 8;
  cfg.scheduler.max_latency = 2ms;
  cfg.sessions.window = 31;

  // Offline reference: the plain replay path everyone already trusts.
  std::vector<serving::StationVerdict> offline;
  {
    serving::AuthService service(auth, cfg);
    service.start();
    for (const auto& obs : stream) ASSERT_TRUE(service.submit(obs));
    service.drain();
    offline = service.sessions().snapshot();
  }

  // Network path: publisher first (it must outlive the service), then the
  // service, then ingest — mirroring the CLI's `serve --listen` wiring.
  net::VerdictPublisher pub({});
  pub.start();
  serving::AuthService service(auth, cfg);
  service.set_verdict_callback([&pub](const serving::StationVerdict& v) {
    net::VerdictMsg m;
    m.station = v.station;
    m.module_id = static_cast<std::int32_t>(v.module_id);
    m.votes = static_cast<std::uint32_t>(v.votes);
    m.window_size = static_cast<std::uint32_t>(v.window_size);
    m.total_reports = v.total_reports;
    m.mean_confidence = v.mean_confidence;
    m.last_timestamp_s = v.last_timestamp_s;
    pub.publish(m);
  });
  service.start();
  net::TcpIngestServer ingest(
      {}, [&service](capture::ObservedFeedback& obs) {
        return service.try_submit(obs);
      });
  ingest.start();

  auto subscriber = net::VerdictSubscriber::connect("127.0.0.1", pub.port());

  // Three connections, stations sharded by MAC — per-station order holds.
  std::vector<net::NetClient> clients;
  for (int i = 0; i < 3; ++i)
    clients.push_back(net::NetClient::connect("127.0.0.1", ingest.port()));
  for (const auto& obs : stream) {
    const std::size_t c =
        common::mix64(obs.beamformee.to_u64()) % clients.size();
    ASSERT_TRUE(clients[c].send_report(obs));
  }
  for (auto& c : clients) c.close();

  ingest.wait_until_idle();
  ingest.stop();
  service.drain();
  const auto online = service.sessions().snapshot();
  // Final snapshot + stats over the wire, then flush-and-close.
  for (const auto& v : online) {
    net::VerdictMsg m;
    m.station = v.station;
    m.module_id = static_cast<std::int32_t>(v.module_id);
    m.votes = static_cast<std::uint32_t>(v.votes);
    m.window_size = static_cast<std::uint32_t>(v.window_size);
    m.total_reports = v.total_reports;
    m.mean_confidence = v.mean_confidence;
    m.last_timestamp_s = v.last_timestamp_s;
    pub.publish(m);
  }
  pub.publish_stats({});
  pub.stop(30000ms);

  // The server-side table must equal the offline run field for field —
  // the wire moved bytes, it didn't change them.
  ASSERT_EQ(online.size(), offline.size());
  for (std::size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ(online[i].station, offline[i].station);
    EXPECT_EQ(online[i].module_id, offline[i].module_id);
    EXPECT_EQ(online[i].votes, offline[i].votes);
    EXPECT_EQ(online[i].window_size, offline[i].window_size);
    EXPECT_EQ(online[i].total_reports, offline[i].total_reports);
    EXPECT_EQ(online[i].mean_confidence, offline[i].mean_confidence);
    EXPECT_EQ(online[i].last_timestamp_s, offline[i].last_timestamp_s);
  }

  // And what the subscriber RECEIVED (last update per station wins — the
  // final snapshot) must match too, bit for bit on the doubles.
  std::map<capture::MacAddress, net::VerdictMsg> received;
  bool saw_stats = false;
  while (auto frame = subscriber.next_frame()) {
    const std::span<const std::uint8_t> payload(frame->payload.data(),
                                                frame->payload.size());
    if (frame->type ==
        static_cast<std::uint8_t>(net::FrameType::kVerdictUpdate)) {
      const auto v = net::decode_verdict(payload);
      ASSERT_TRUE(v.has_value());
      received[v->station] = *v;
    } else if (frame->type ==
               static_cast<std::uint8_t>(net::FrameType::kStats)) {
      saw_stats = true;
    }
  }
  EXPECT_TRUE(saw_stats);
  ASSERT_EQ(received.size(), offline.size());
  std::size_t i = 0;
  for (const auto& [mac, v] : received) {  // std::map sorts by MAC like snapshot()
    EXPECT_EQ(mac, offline[i].station);
    EXPECT_EQ(v.module_id, offline[i].module_id);
    EXPECT_EQ(v.votes, offline[i].votes);
    EXPECT_EQ(v.window_size, offline[i].window_size);
    EXPECT_EQ(v.total_reports, offline[i].total_reports);
    EXPECT_EQ(v.mean_confidence, offline[i].mean_confidence);
    EXPECT_EQ(v.last_timestamp_s, offline[i].last_timestamp_s);
    ++i;
  }
}

}  // namespace
}  // namespace deepcsi
