// Forward-pass correctness of each NN layer against hand-computed or
// brute-force references.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/model.h"
#include "nn/pool.h"

namespace deepcsi::nn {
namespace {

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  std::mt19937_64 rng(1);
  Conv2d conv(1, 1, 1, 3, rng);
  // Set kernel to [0, 1, 0] with zero bias -> identity under 'same' pad.
  conv.params()[0]->value.fill(0.0f);
  conv.params()[0]->value[1] = 1.0f;
  conv.params()[1]->value.zero();

  Tensor x({1, 1, 1, 6});
  for (std::size_t i = 0; i < 6; ++i) x[i] = static_cast<float>(i + 1);
  const Tensor y = conv.forward(x, false);
  ASSERT_TRUE(y.same_shape(x));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2dTest, SamePaddingZerosOutsideBorders) {
  std::mt19937_64 rng(1);
  Conv2d conv(1, 1, 1, 3, rng);
  // Kernel [1, 0, 0]: shifts input right; first output sees zero padding.
  conv.params()[0]->value.fill(0.0f);
  conv.params()[0]->value[0] = 1.0f;
  conv.params()[1]->value.zero();
  Tensor x({1, 1, 1, 4});
  for (std::size_t i = 0; i < 4; ++i) x[i] = static_cast<float>(i + 1);
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);  // pad
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  EXPECT_FLOAT_EQ(y[3], 3.0f);
}

TEST(Conv2dTest, BruteForceReference) {
  std::mt19937_64 rng(3);
  const std::size_t ci = 3, co = 4, kw = 5, n = 2, w = 11;
  Conv2d conv(ci, co, 1, kw, rng);
  Tensor x({n, ci, 1, w});
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = dist(rng);
  const Tensor y = conv.forward(x, false);

  const Tensor& wt = conv.params()[0]->value;
  const Tensor& bs = conv.params()[1]->value;
  const std::ptrdiff_t pad = (kw - 1) / 2;
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t o = 0; o < co; ++o)
      for (std::size_t p = 0; p < w; ++p) {
        float acc = bs[o];
        for (std::size_t c = 0; c < ci; ++c)
          for (std::size_t j = 0; j < kw; ++j) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(p) + static_cast<std::ptrdiff_t>(j) - pad;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(w)) continue;
            acc += wt[(o * ci + c) * kw + j] *
                   x.at4(b, c, 0, static_cast<std::size_t>(src));
          }
        EXPECT_NEAR(y.at4(b, o, 0, p), acc, 1e-4f);
      }
}

TEST(Conv2dTest, RejectsEvenKernels) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(Conv2d(1, 1, 1, 4, rng), std::logic_error);
}

TEST(Conv2dTest, RejectsChannelMismatch) {
  std::mt19937_64 rng(1);
  Conv2d conv(2, 1, 1, 3, rng);
  Tensor x({1, 3, 1, 4});
  EXPECT_THROW(conv.forward(x, false), std::logic_error);
}

TEST(DenseTest, MatchesMatrixVectorProduct) {
  std::mt19937_64 rng(5);
  Dense dense(4, 3, rng);
  Tensor x({2, 4});
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = dist(rng);
  const Tensor y = dense.forward(x, false);
  const Tensor& wt = dense.params()[0]->value;
  const Tensor& bs = dense.params()[1]->value;
  for (std::size_t n = 0; n < 2; ++n)
    for (std::size_t o = 0; o < 3; ++o) {
      float acc = bs[o];
      for (std::size_t i = 0; i < 4; ++i) acc += wt[o * 4 + i] * x[n * 4 + i];
      EXPECT_NEAR(y[n * 3 + o], acc, 1e-5f);
    }
}

TEST(SeluTest, KnownValues) {
  Selu selu;
  Tensor x({3});
  x[0] = 1.0f;
  x[1] = 0.0f;
  x[2] = -1.0f;
  const Tensor y = selu.forward(x, false);
  EXPECT_NEAR(y[0], kSeluLambda, 1e-6f);
  EXPECT_NEAR(y[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y[2], kSeluLambda * kSeluAlpha * (std::exp(-1.0f) - 1.0f), 1e-6f);
}

TEST(SeluTest, SelfNormalizingFixedPointStatistics) {
  // SELU maps N(0,1) inputs to approximately zero-mean unit-variance
  // outputs — the property the initialization relies on.
  std::mt19937_64 rng(11);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  Tensor x({100000});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = dist(rng);
  Selu selu;
  const Tensor y = selu.forward(x, false);
  double mean = y.sum() / static_cast<double>(y.numel());
  double var = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    var += (y[i] - mean) * (y[i] - mean);
  var /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(MaxPoolTest, PicksMaximaAndFloorsOddTails) {
  MaxPool2d pool(1, 2);
  Tensor x({1, 1, 1, 5});
  const float vals[5] = {3, 1, 4, 1, 5};
  for (std::size_t i = 0; i < 5; ++i) x[i] = vals[i];
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.dim(3), 2u);  // element 5 (odd tail) dropped
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(1, 2);
  Tensor x({1, 1, 1, 4});
  x[0] = 1;
  x[1] = 9;
  x[2] = 7;
  x[3] = 2;
  pool.forward(x, true);
  Tensor g({1, 1, 1, 2});
  g[0] = 5;
  g[1] = 11;
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 5.0f);
  EXPECT_FLOAT_EQ(gx[2], 11.0f);
  EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(AlphaDropoutTest, EvalModeIsIdentity) {
  AlphaDropout drop(0.5f, 1);
  Tensor x({100});
  for (std::size_t i = 0; i < 100; ++i) x[i] = static_cast<float>(i) * 0.1f;
  const Tensor y = drop.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(AlphaDropoutTest, PreservesMeanAndVarianceApproximately) {
  AlphaDropout drop(0.3f, 7);
  std::mt19937_64 rng(13);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  Tensor x({200000});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = dist(rng);
  const Tensor y = drop.forward(x, /*training=*/true);
  const double mean = y.sum() / static_cast<double>(y.numel());
  double var = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    var += (y[i] - mean) * (y[i] - mean);
  var /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(AlphaDropoutTest, DropsExpectedFraction) {
  // With constant input, outputs take exactly two values: a + b for kept
  // units and a*alpha' + b for dropped ones.
  AlphaDropout drop(0.5f, 3);
  Tensor x({10000});
  x.fill(1.0f);
  const Tensor y = drop.forward(x, true);
  const float alpha_p = -kSeluLambda * kSeluAlpha;
  const float keep = 0.5f;
  const float a =
      1.0f / std::sqrt(keep * (1.0f + (1.0f - keep) * alpha_p * alpha_p));
  const float b = -a * (1.0f - keep) * alpha_p;
  const float kept_value = a * 1.0f + b;
  const float dropped_value = a * alpha_p + b;
  int kept_count = 0, dropped_count = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (std::abs(y[i] - kept_value) < 1e-5f) ++kept_count;
    else if (std::abs(y[i] - dropped_value) < 1e-5f) ++dropped_count;
  }
  EXPECT_EQ(kept_count + dropped_count, 10000);
  EXPECT_NEAR(static_cast<double>(dropped_count) / 10000.0, 0.5, 0.03);
}

TEST(AlphaDropoutTest, RejectsInvalidRate) {
  EXPECT_THROW(AlphaDropout(1.0f, 1), std::logic_error);
  EXPECT_THROW(AlphaDropout(-0.1f, 1), std::logic_error);
}

TEST(AttentionTest, OutputBetweenXAndTwiceX) {
  // out = x (1 + sigmoid(s)): for positive x, x < out < 2x.
  std::mt19937_64 rng(17);
  SpatialAttention att(rng);
  Tensor x({2, 3, 1, 8});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = 0.5f + 0.01f * static_cast<float>(i % 7);
  const Tensor y = att.forward(x, false);
  ASSERT_TRUE(y.same_shape(x));
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_GT(y[i], x[i]);
    EXPECT_LT(y[i], 2.0f * x[i]);
  }
}

TEST(FlattenTest, RoundTripShape) {
  Flatten flat;
  Tensor x({2, 3, 1, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = flat.forward(x, false);
  EXPECT_EQ(y.rank(), 2u);
  EXPECT_EQ(y.dim(1), 12u);
  const Tensor g = flat.backward(y);
  EXPECT_TRUE(g.same_shape(x));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor logits({3, 5});
  std::mt19937_64 rng(19);
  std::normal_distribution<float> dist(0.0f, 3.0f);
  for (std::size_t i = 0; i < logits.numel(); ++i) logits[i] = dist(rng);
  const Tensor p = softmax(logits);
  for (std::size_t r = 0; r < 3; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_GE(p[r * 5 + c], 0.0f);
      s += p[r * 5 + c];
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(SoftmaxXentTest, PerfectPredictionHasLowLoss) {
  Tensor logits({1, 3});
  logits[0] = 20.0f;
  logits[1] = 0.0f;
  logits[2] = 0.0f;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.predictions[0], 0);
}

TEST(SoftmaxXentTest, UniformLogitsGiveLogK) {
  Tensor logits({1, 10});
  const LossResult r = softmax_cross_entropy(logits, {4});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(SoftmaxXentTest, GradientIsProbsMinusOneHotOverN) {
  Tensor logits({2, 3});
  logits[0] = 1.0f;
  logits[1] = 2.0f;
  logits[2] = 0.5f;
  logits[3] = -1.0f;
  logits[4] = 0.0f;
  logits[5] = 1.0f;
  const LossResult r = softmax_cross_entropy(logits, {1, 2});
  for (std::size_t n = 0; n < 2; ++n)
    for (std::size_t c = 0; c < 3; ++c) {
      const float expected =
          (r.probs[n * 3 + c] - ((n == 0 && c == 1) || (n == 1 && c == 2) ? 1.0f : 0.0f)) / 2.0f;
      EXPECT_NEAR(r.grad_logits[n * 3 + c], expected, 1e-6f);
    }
}

TEST(SoftmaxXentTest, LabelValidation) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::logic_error);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), std::logic_error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::logic_error);
}

TEST(ConfusionMatrixTest, AccuracyAndRates) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_NEAR(cm.accuracy(), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(cm.rate(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.rate(2, 0), 1.0, 1e-12);
  EXPECT_EQ(cm.count(1, 1), 1);
  ConfusionMatrix other(3);
  other.add(2, 2);
  cm.merge(other);
  EXPECT_EQ(cm.total(), 6);
  EXPECT_THROW(cm.add(3, 0), std::logic_error);
}

TEST(SequentialTest, ParamAggregationAndZeroGrad) {
  std::mt19937_64 rng(23);
  Sequential model;
  model.emplace<Dense>(4, 8, rng);
  model.emplace<Selu>();
  model.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(model.params().size(), 4u);  // 2 weights + 2 biases
  EXPECT_EQ(model.num_trainable(), 4u * 8 + 8 + 8 * 2 + 2);
  model.params()[0]->grad.fill(1.0f);
  model.zero_grad();
  EXPECT_EQ(model.params()[0]->grad.sum(), 0.0);
}

}  // namespace
}  // namespace deepcsi::nn
