// ServeOptions is THE parse-and-validate path for serving knobs — the
// CLI's serve/fleet verbs and any harness building a ServiceConfig from
// strings go through it. These tests pin the contract: defaults, every
// rejection (as an error string, never an exit), the eviction knobs'
// unit conversions, and the front-specific rules.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>

#include "serving/options.h"

namespace deepcsi {
namespace {

using serving::ServeOptions;

using Flags = std::map<std::string, std::string>;

std::optional<ServeOptions> parse(Flags flags,
                                  ServeOptions::Front front,
                                  std::string* err) {
  return ServeOptions::parse(flags, front, err);
}

TEST(ServeOptionsTest, ReplayDefaults) {
  std::string err;
  const auto o = parse({{"model", "m.bin"}, {"pcap", "c.pcap"}},
                       ServeOptions::Front::kServe, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->model, "m.bin");
  EXPECT_EQ(o->pcap, "c.pcap");
  EXPECT_FALSE(o->listen);
  EXPECT_EQ(o->service.queue_capacity, 1024u);
  EXPECT_EQ(o->service.scheduler.max_batch, 64u);
  EXPECT_EQ(o->service.scheduler.max_latency,
            std::chrono::microseconds(2000));
  EXPECT_EQ(o->service.sessions.window, 31u);
  EXPECT_EQ(o->service.sessions.num_shards, 8u);
  EXPECT_EQ(o->service.sessions.ttl_s, 0.0);
  EXPECT_EQ(o->service.sessions.max_stations, 0u);
  EXPECT_EQ(o->service.sessions.max_bytes, 0u);
  EXPECT_EQ(o->service.consumers, 1u);
  EXPECT_EQ(o->service.policy, common::OverflowPolicy::kBlock);
  EXPECT_EQ(o->loops, 1);
  EXPECT_EQ(o->producers, 1);
  EXPECT_EQ(o->rate_rps, 0.0);
}

TEST(ServeOptionsTest, ModelIsRequired) {
  std::string err;
  EXPECT_FALSE(
      parse({{"pcap", "c.pcap"}}, ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("--model"), std::string::npos);
}

TEST(ServeOptionsTest, ServeNeedsExactlyOneFrontEnd) {
  std::string err;
  EXPECT_FALSE(parse({{"model", "m"}}, ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("--pcap"), std::string::npos);

  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"listen", "9000"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("mutually exclusive"), std::string::npos);
}

TEST(ServeOptionsTest, MalformedNumbersAreErrorsNotExits) {
  std::string err;
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"queue", "abc"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("invalid integer for --queue"), std::string::npos);

  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"queue", "12x"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("--queue"), std::string::npos);

  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"ttl", "1.5q"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("invalid number for --ttl"), std::string::npos);
}

TEST(ServeOptionsTest, RangeViolationsAreRejected) {
  std::string err;
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"queue", "0"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"shards", "0"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"latency-us", "-1"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"ttl", "-2"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"policy", "banana"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("banana"), std::string::npos);
}

TEST(ServeOptionsTest, EvictionKnobsLandInSessionConfig) {
  std::string err;
  const auto o = parse({{"model", "m"},
                        {"pcap", "c"},
                        {"ttl", "30.5"},
                        {"max-stations", "100000"},
                        {"max-session-mb", "64"},
                        {"shards", "32"},
                        {"window", "15"}},
                       ServeOptions::Front::kServe, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->service.sessions.ttl_s, 30.5);
  EXPECT_EQ(o->service.sessions.max_stations, 100000u);
  EXPECT_EQ(o->service.sessions.max_bytes, 64u * 1024u * 1024u);
  EXPECT_EQ(o->service.sessions.num_shards, 32u);
  EXPECT_EQ(o->service.sessions.window, 15u);
}

TEST(ServeOptionsTest, ListenBranchDefaultsShedWatermarksFromQueue) {
  std::string err;
  const auto o = parse(
      {{"model", "m"}, {"listen", "9000"}, {"queue", "1000"}},
      ServeOptions::Front::kServe, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->listen);
  EXPECT_EQ(o->listen_port, 9000);
  EXPECT_FALSE(o->publish);
  EXPECT_EQ(o->shed_high, 900);  // 90% of the queue budget
  EXPECT_EQ(o->shed_low, 700);   // 70%

  // Explicit watermarks must keep the hysteresis invariant.
  EXPECT_FALSE(parse({{"model", "m"},
                      {"listen", "9000"},
                      {"shed-high", "10"},
                      {"shed-low", "20"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("shed-low"), std::string::npos);
}

TEST(ServeOptionsTest, PortValidation) {
  std::string err;
  EXPECT_FALSE(parse({{"model", "m"}, {"listen", "0"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("invalid port for --listen"), std::string::npos);
  EXPECT_FALSE(parse({{"model", "m"}, {"listen", "70000"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(parse({{"model", "m"}, {"listen", "9000"}, {"publish", "-1"}},
                     ServeOptions::Front::kServe, &err));
}

TEST(ServeOptionsTest, FleetForbidsFrontEndFlagsAndNeedsOnlyModel) {
  std::string err;
  const auto o = parse({{"model", "m"}, {"ttl", "5"}, {"max-stations", "9"}},
                       ServeOptions::Front::kFleet, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->service.sessions.ttl_s, 5.0);
  EXPECT_EQ(o->service.sessions.max_stations, 9u);

  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}},
                     ServeOptions::Front::kFleet, &err));
  EXPECT_NE(err.find("fleet"), std::string::npos);
  EXPECT_FALSE(parse({{"model", "m"}, {"listen", "9000"}},
                     ServeOptions::Front::kFleet, &err));
}

TEST(ServeOptionsTest, DriftKnobsLandInSessionConfigAndAreRangeChecked) {
  std::string err;
  const auto o = parse({{"model", "m"},
                        {"pcap", "c"},
                        {"drift-alpha", "0.25"},
                        {"drift-threshold", "0.4"},
                        {"drift-min-reports", "16"}},
                       ServeOptions::Front::kServe, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->service.sessions.drift_alpha, 0.25);
  EXPECT_EQ(o->service.sessions.drift_threshold, 0.4);
  EXPECT_EQ(o->service.sessions.drift_min_reports, 16u);
  // Defaults: detection disabled (threshold 0), EWMA knobs sane.
  const auto d = parse({{"model", "m"}, {"pcap", "c"}},
                       ServeOptions::Front::kServe, &err);
  ASSERT_TRUE(d.has_value()) << err;
  EXPECT_EQ(d->service.sessions.drift_threshold, 0.0);

  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"drift-alpha", "0"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("--drift-alpha"), std::string::npos);
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"drift-alpha", "1.5"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(
      parse({{"model", "m"}, {"pcap", "c"}, {"drift-threshold", "1.2"}},
            ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(
      parse({{"model", "m"}, {"pcap", "c"}, {"drift-min-reports", "0"}},
            ServeOptions::Front::kServe, &err));
}

TEST(ServeOptionsTest, LifecycleKnobsValidateTheirDependencies) {
  std::string err;
  const auto o = parse({{"model", "m"},
                        {"listen", "9000"},
                        {"model-watch", "500"},
                        {"shadow-model", "cand.bin"},
                        {"shadow-sample", "4"},
                        {"promote-below", "0.05"},
                        {"promote-min", "128"}},
                       ServeOptions::Front::kServe, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->model_watch_ms, 500);
  EXPECT_EQ(o->shadow_model, "cand.bin");
  EXPECT_EQ(o->shadow_sample, 4);
  EXPECT_EQ(o->promote_below, 0.05);
  EXPECT_EQ(o->promote_min, 128);

  // --model-watch only makes sense with a long-lived network front end.
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"model-watch", "500"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("--model-watch requires --listen"), std::string::npos);
  // Promotion gates are meaningless without a candidate to promote.
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"promote-below", "0.1"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("--promote-below requires --shadow-model"),
            std::string::npos);
  EXPECT_FALSE(parse({{"model", "m"}, {"pcap", "c"}, {"shadow-sample", "4"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_NE(err.find("--shadow-sample requires --shadow-model"),
            std::string::npos);
  // Ranges.
  EXPECT_FALSE(parse({{"model", "m"}, {"listen", "9000"}, {"model-watch", "-1"}},
                     ServeOptions::Front::kServe, &err));
  EXPECT_FALSE(parse({{"model", "m"},
                      {"listen", "9000"},
                      {"shadow-model", "c"},
                      {"shadow-sample", "0"}},
                     ServeOptions::Front::kServe, &err));
}

TEST(ServeOptionsTest, FleetHasNoLiveModelLifecycle) {
  std::string err;
  EXPECT_FALSE(parse({{"model", "m"}, {"shadow-model", "c.bin"}},
                     ServeOptions::Front::kFleet, &err));
  EXPECT_NE(err.find("fleet has no live model lifecycle"), std::string::npos);
  EXPECT_FALSE(parse({{"model", "m"}, {"model-watch", "500"}},
                     ServeOptions::Front::kFleet, &err));
  // Drift detection, by contrast, is a SessionTable feature and works
  // anywhere sessions do — including the fleet simulator.
  const auto o = parse({{"model", "m"}, {"drift-threshold", "0.5"}},
                       ServeOptions::Front::kFleet, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->service.sessions.drift_threshold, 0.5);
}

TEST(ServeOptionsTest, UnknownKeysAreIgnored) {
  // Verbs own their extra flags (fleet's --stations, drive's knobs); the
  // shared parser must not reject them.
  std::string err;
  const auto o = parse(
      {{"model", "m"}, {"pcap", "c"}, {"stations", "100000"}, {"zzz", "1"}},
      ServeOptions::Front::kServe, &err);
  EXPECT_TRUE(o.has_value()) << err;
}

TEST(ServeOptionsTest, StatsJsonPathPassesThrough) {
  std::string err;
  const auto o =
      parse({{"model", "m"}, {"pcap", "c"}, {"stats-json", "/tmp/s.json"}},
            ServeOptions::Front::kServe, &err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->stats_json, "/tmp/s.json");
}

}  // namespace
}  // namespace deepcsi
