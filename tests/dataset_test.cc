// Dataset generation and splits: Table I/II definitions, trace structure,
// feature assembly, and the offset-correction baseline transform.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dataset/splits.h"
#include "feedback/quantizer.h"

namespace deepcsi::dataset {
namespace {

Scale tiny_scale() { return Scale{4, 5, 6}; }

TEST(SplitsTest, TableOneDefinitions) {
  const D1Split s1 = d1_split(SetId::kS1);
  EXPECT_EQ(s1.train_positions, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(s1.test_positions, s1.train_positions);
  const D1Split s2 = d1_split(SetId::kS2);
  EXPECT_EQ(s2.train_positions, (std::vector<int>{1, 3, 5, 7, 9}));
  EXPECT_EQ(s2.test_positions, (std::vector<int>{2, 4, 6, 8}));
  const D1Split s3 = d1_split(SetId::kS3);
  EXPECT_EQ(s3.train_positions, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(s3.test_positions, (std::vector<int>{6, 7, 8, 9}));
  EXPECT_THROW(d1_split(SetId::kS4), std::logic_error);
}

TEST(SplitsTest, TableTwoDefinitions) {
  EXPECT_EQ(d2_group_fix1(), (std::vector<int>{0, 1}));
  EXPECT_EQ(d2_group_fix2(), (std::vector<int>{2, 3}));
  EXPECT_EQ(d2_group_mob1(), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(d2_group_mob2(), (std::vector<int>{8, 9, 10}));
  const D2Split s4 = d2_split(SetId::kS4);
  EXPECT_EQ(s4.train_traces, d2_group_mob1());
  EXPECT_EQ(s4.test_traces, d2_group_mob2());
  const D2Split s5 = d2_split(SetId::kS5);
  EXPECT_EQ(s5.train_traces, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s5.test_traces, (std::vector<int>{4, 5, 6, 7, 8, 9, 10}));
  const D2Split s6 = d2_split(SetId::kS6);
  EXPECT_EQ(s6.train_traces, (std::vector<int>{4, 5, 6, 7, 8, 9, 10}));
  EXPECT_EQ(s6.test_traces, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_THROW(d2_split(SetId::kS1), std::logic_error);
}

TEST(TraceTest, D1TraceStructure) {
  const Trace t = generate_d1_trace(2, 5, 0, tiny_scale(), {});
  EXPECT_EQ(t.module_id, 2);
  EXPECT_EQ(t.position, 5);
  EXPECT_FALSE(t.mobile);
  ASSERT_EQ(t.snapshots.size(), 4u);
  for (const Snapshot& s : t.snapshots) {
    EXPECT_EQ(s.report.m, 3);
    EXPECT_EQ(s.report.nss, 2);
    EXPECT_EQ(s.report.subcarriers.size(), 234u);
    EXPECT_EQ(s.report.per_subcarrier.size(), 234u);
  }
  EXPECT_DOUBLE_EQ(t.snapshots.front().t_frac, 0.0);
  EXPECT_DOUBLE_EQ(t.snapshots.back().t_frac, 1.0);
}

TEST(TraceTest, D1Deterministic) {
  const Trace a = generate_d1_trace(1, 2, 1, tiny_scale(), {});
  const Trace b = generate_d1_trace(1, 2, 1, tiny_scale(), {});
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    EXPECT_EQ(a.snapshots[i].report.per_subcarrier[0].q_phi,
              b.snapshots[i].report.per_subcarrier[0].q_phi);
    EXPECT_EQ(a.snapshots[i].report.per_subcarrier[100].q_psi,
              b.snapshots[i].report.per_subcarrier[100].q_psi);
  }
}

TEST(TraceTest, D1DiffersAcrossModules) {
  const Trace a = generate_d1_trace(0, 1, 0, tiny_scale(), {});
  const Trace b = generate_d1_trace(1, 1, 0, tiny_scale(), {});
  int diffs = 0;
  for (std::size_t k = 0; k < 234; k += 10)
    if (a.snapshots[0].report.per_subcarrier[k].q_phi !=
        b.snapshots[0].report.per_subcarrier[k].q_phi)
      ++diffs;
  EXPECT_GT(diffs, 3);
}

TEST(TraceTest, D2BeamformeeZeroHasOneStream) {
  const Trace t = generate_d2_trace(0, 0, 0, tiny_scale(), {});
  EXPECT_EQ(t.snapshots[0].report.nss, 1);
  EXPECT_EQ(t.snapshots[0].report.m, 3);
  const Trace t1 = generate_d2_trace(0, 0, 1, tiny_scale(), {});
  EXPECT_EQ(t1.snapshots[0].report.nss, 2);
}

TEST(TraceTest, D2MobilityFlags) {
  for (int idx = 0; idx < kNumD2Traces; ++idx)
    EXPECT_EQ(d2_trace_is_mobile(idx), idx >= 4);
  EXPECT_TRUE(generate_d2_trace(0, 6, 0, tiny_scale(), {}).mobile);
  EXPECT_FALSE(generate_d2_trace(0, 1, 0, tiny_scale(), {}).mobile);
  EXPECT_THROW(generate_d2_trace(0, 11, 0, tiny_scale(), {}),
               std::logic_error);
}

TEST(FeaturesTest, ChannelCounts) {
  InputSpec spec;
  spec.num_antennas = 3;
  EXPECT_EQ(num_input_channels(spec), 5);  // I,Q,I,Q,I — last row is real
  spec.num_antennas = 2;
  EXPECT_EQ(num_input_channels(spec), 4);
  spec.num_antennas = 1;
  EXPECT_EQ(num_input_channels(spec), 2);
}

TEST(FeaturesTest, ColumnCounts) {
  InputSpec spec;
  EXPECT_EQ(num_input_columns(spec), 234u);
  spec.band = phy::Band::k40MHz;
  EXPECT_EQ(num_input_columns(spec), 110u);
  spec.band = phy::Band::k20MHz;
  EXPECT_EQ(num_input_columns(spec), 54u);
  spec.band = phy::Band::k80MHz;
  spec.subcarrier_stride = 2;
  EXPECT_EQ(num_input_columns(spec), 117u);
}

TEST(FeaturesTest, LastAntennaRowContributesRealOnly) {
  const Trace t = generate_d1_trace(0, 1, 0, tiny_scale(), {});
  InputSpec spec;
  spec.subcarrier_stride = 1;
  const std::size_t w = num_input_columns(spec);
  std::vector<float> buf(5 * w);
  fill_features(t.snapshots[0].report, spec, buf.data());
  // Channel 4 is the I of the last antenna: all entries are the real
  // parts of non-negative reals, so >= 0.
  for (std::size_t i = 0; i < w; ++i) EXPECT_GE(buf[4 * w + i], 0.0f);
  // Earlier channels contain both signs (I/Q of genuinely complex rows).
  bool has_negative = false;
  for (std::size_t i = 0; i < 4 * w; ++i)
    if (buf[i] < 0.0f) has_negative = true;
  EXPECT_TRUE(has_negative);
}

TEST(FeaturesTest, StreamSelectionValidated) {
  const Trace t = generate_d2_trace(0, 0, 0, tiny_scale(), {});  // nss = 1
  InputSpec spec;
  spec.stream = 1;
  std::vector<float> buf(5 * 234);
  EXPECT_THROW(fill_features(t.snapshots[0].report, spec, buf.data()),
               std::logic_error);
}

TEST(FeaturesTest, OffsetCorrectionRemovesLinearPhase) {
  const Trace t = generate_d1_trace(3, 4, 0, tiny_scale(), {});
  InputSpec raw;
  raw.subcarrier_stride = 1;
  InputSpec cleaned = raw;
  cleaned.offset_correction = true;
  const std::size_t w = num_input_columns(raw);
  std::vector<float> braw(5 * w), bcln(5 * w);
  fill_features(t.snapshots[0].report, raw, braw.data());
  fill_features(t.snapshots[0].report, cleaned, bcln.data());

  // For antenna row 0 (channels 0=I, 1=Q): fit a line to the unwrapped
  // phase; after cleaning, slope and mean must be ~0.
  auto fit = [&](const std::vector<float>& buf) {
    double prev = std::atan2(buf[w], buf[0]);
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < w; ++i) {
      double p = std::atan2(buf[w + i], buf[i]);
      while (p - prev > std::numbers::pi) p -= 2 * std::numbers::pi;
      while (p - prev < -std::numbers::pi) p += 2 * std::numbers::pi;
      prev = p;
      const double x = static_cast<double>(i);
      sx += x;
      sy += p;
      sxx += x * x;
      sxy += x * p;
    }
    const double n = static_cast<double>(w);
    const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    const double mean = sy / n;
    return std::pair<double, double>(slope, mean);
  };
  const auto [slope_c, mean_c] = fit(bcln);
  EXPECT_NEAR(slope_c, 0.0, 5e-3);
  EXPECT_NEAR(mean_c, 0.0, 0.3);
  // And the cleaned features must actually differ from the raw ones.
  double diff = 0.0;
  for (std::size_t i = 0; i < braw.size(); ++i)
    diff += std::abs(braw[i] - bcln[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(MakeLabeledSetTest, TimeSlicingAndLabels) {
  std::vector<Trace> traces;
  traces.push_back(generate_d1_trace(0, 1, 0, tiny_scale(), {}));
  traces.push_back(generate_d1_trace(7, 1, 0, tiny_scale(), {}));
  InputSpec spec;
  spec.subcarrier_stride = 6;
  const nn::LabeledSet all = make_labeled_set(traces, spec);
  EXPECT_EQ(all.size(), 8u);  // 2 traces x 4 snapshots
  EXPECT_EQ(all.num_classes, 10);
  EXPECT_EQ(all.y[0], 0);
  EXPECT_EQ(all.y[4], 7);
  EXPECT_EQ(all.x.dim(1), 5u);
  EXPECT_EQ(all.x.dim(3), num_input_columns(spec));

  // t_frac grid for 4 snapshots: {0, 1/3, 2/3, 1}; first 80% -> 3 each.
  const nn::LabeledSet head = make_labeled_set(traces, spec, 0.0, 0.8);
  EXPECT_EQ(head.size(), 6u);
  const nn::LabeledSet tail = make_labeled_set(traces, spec, 0.8, 1.0);
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_THROW(make_labeled_set(traces, spec, 0.9, 0.91), std::logic_error);
}

TEST(BuildD1Test, SetSizesFollowTableOne) {
  D1Options opt;
  opt.scale = tiny_scale();
  opt.input.subcarrier_stride = 12;
  opt.set = SetId::kS2;
  const SplitSets s2 = build_d1(opt);
  // Train: 10 modules x 5 positions x 4 snapshots; test: 4 positions.
  EXPECT_EQ(s2.train.size(), 10u * 5 * 4);
  EXPECT_EQ(s2.test.size(), 10u * 4 * 4);

  opt.set = SetId::kS1;
  const SplitSets s1 = build_d1(opt);
  EXPECT_EQ(s1.train.size(), 10u * 9 * 3);  // first 80% of 4 snapshots = 3
  EXPECT_EQ(s1.test.size(), 10u * 9 * 1);
}

TEST(BuildD1Test, MaxTrainPositionsTruncates) {
  D1Options opt;
  opt.scale = tiny_scale();
  opt.input.subcarrier_stride = 12;
  opt.set = SetId::kS3;
  opt.max_train_positions = 2;
  const SplitSets s = build_d1(opt);
  EXPECT_EQ(s.train.size(), 10u * 2 * 4);
  EXPECT_EQ(s.test.size(), 10u * 4 * 4);
}

TEST(BuildD1Test, MixedBeamformeesDoublesData) {
  D1Options opt;
  opt.scale = tiny_scale();
  opt.input.subcarrier_stride = 12;
  opt.set = SetId::kS3;
  const std::size_t single = build_d1(opt).train.size();
  opt.mix_beamformees = true;
  EXPECT_EQ(build_d1(opt).train.size(), 2 * single);
}

TEST(BuildD2Test, SetSizesFollowTableTwo) {
  D2Options opt;
  opt.scale = tiny_scale();
  opt.input.subcarrier_stride = 12;
  opt.set = SetId::kS4;
  const SplitSets s4 = build_d2(opt);
  EXPECT_EQ(s4.train.size(), 10u * 4 * 5);  // mob1: 4 traces x 5 snapshots
  EXPECT_EQ(s4.test.size(), 10u * 3 * 5);   // mob2: 3 traces

  opt.set = SetId::kS5;
  const SplitSets s5 = build_d2(opt);
  EXPECT_EQ(s5.train.size(), 10u * 4 * 5);
  EXPECT_EQ(s5.test.size(), 10u * 7 * 5);
}

TEST(BuildD2Test, SubpathVariantRestrictsSnapshots) {
  D2Options opt;
  opt.scale = tiny_scale();
  opt.input.subcarrier_stride = 12;
  opt.set = SetId::kS4;
  opt.subpath_variant = true;
  const SplitSets s = build_d2(opt);
  // t_frac grid {0, .25, .5, .75, 1}: train keeps < 0.5 (2 per trace),
  // test keeps [0.5, 5/6] (2 per trace: 0.5 and 0.75).
  EXPECT_EQ(s.train.size(), 10u * 4 * 2);
  EXPECT_EQ(s.test.size(), 10u * 3 * 2);
  opt.set = SetId::kS5;
  EXPECT_THROW(build_d2(opt), std::logic_error);
}

TEST(ScaleTest, EnvSelection) {
  EXPECT_EQ(quick_scale().subcarrier_stride, 2);
  EXPECT_EQ(full_scale().subcarrier_stride, 1);
  EXPECT_GT(full_scale().d1_snapshots_per_trace,
            quick_scale().d1_snapshots_per_trace);
}

}  // namespace
}  // namespace deepcsi::dataset
