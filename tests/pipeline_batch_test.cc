// Batched serving API: classify_batch must match per-report classify
// bit-for-bit, at any thread count, under every available SIMD backend
// (within a backend the kernels are deterministic; the backend loops here
// pin that for the whole ingest->classify pipeline).
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "dataset/features.h"
#include "dataset/traces.h"
#include "nn/simd.h"
#include "phy/impairments.h"
#include "test_util.h"

namespace deepcsi {
namespace {

using tests::available_backends;
using tests::BackendGuard;
using tests::ThreadGuard;

core::Authenticator make_authenticator(const dataset::InputSpec& spec) {
  return core::Authenticator(
      core::build_deepcsi_model(dataset::num_input_channels(spec),
                                static_cast<int>(dataset::num_input_columns(spec)),
                                phy::kNumModules, core::quick_model_config()),
      spec);
}

std::vector<feedback::CompressedFeedbackReport> make_reports() {
  const dataset::Scale scale{3, 3, 4};
  std::vector<feedback::CompressedFeedbackReport> reports;
  for (int module : {0, 1, 2}) {
    const dataset::Trace trace =
        dataset::generate_d1_trace(module, 1, 0, scale, {});
    for (const dataset::Snapshot& s : trace.snapshots)
      reports.push_back(s.report);
  }
  return reports;
}

TEST(PipelineBatchTest, BatchMatchesPerReportClassify) {
  BackendGuard backend_guard;
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  const auto reports = make_reports();
  ASSERT_GE(reports.size(), 6u);

  for (const simd::Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    const auto batch = auth.classify_batch(reports);
    ASSERT_EQ(batch.size(), reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto single = auth.classify(reports[i]);
      EXPECT_EQ(batch[i].module_id, single.module_id)
          << simd::name(backend) << " " << i;
      EXPECT_EQ(batch[i].confidence, single.confidence)
          << simd::name(backend) << " " << i;
    }
  }
}

TEST(PipelineBatchTest, BatchBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  BackendGuard backend_guard;
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  const auto reports = make_reports();

  for (const simd::Backend backend : available_backends()) {
    ASSERT_TRUE(simd::set_active(backend));
    common::set_num_threads(1);
    const auto r1 = auth.classify_batch(reports);
    common::set_num_threads(4);
    const auto r4 = auth.classify_batch(reports);
    ASSERT_EQ(r1.size(), r4.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].module_id, r4[i].module_id)
          << simd::name(backend) << " " << i;
      EXPECT_EQ(r1[i].confidence, r4[i].confidence)
          << simd::name(backend) << " " << i;
    }
  }
}

TEST(PipelineBatchTest, ClassifyVerdictsAgreeAcrossBackends) {
  // Cross-backend contract: activations may differ by FMA rounding, but
  // the argmax verdict a deployment acts on must not flip.
  BackendGuard backend_guard;
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  const auto reports = make_reports();
  const auto backends = available_backends();
  if (backends.size() < 2) GTEST_SKIP() << "only one backend available";

  ASSERT_TRUE(simd::set_active(backends[0]));
  const auto reference = auth.classify_batch(reports);
  for (std::size_t b = 1; b < backends.size(); ++b) {
    ASSERT_TRUE(simd::set_active(backends[b]));
    const auto other = auth.classify_batch(reports);
    ASSERT_EQ(other.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(other[i].module_id, reference[i].module_id)
          << simd::name(backends[b]) << " report " << i;
      // Confidence is a softmax output; backends agree to float rounding.
      EXPECT_NEAR(other[i].confidence, reference[i].confidence, 1e-4)
          << simd::name(backends[b]) << " report " << i;
    }
  }
}

TEST(PipelineBatchTest, EmptyBatchReturnsEmpty) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  EXPECT_TRUE(auth.classify_batch({}).empty());
}

TEST(PipelineBatchTest, PredictionsAreValidDistributions) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  for (const auto& p : auth.classify_batch(make_reports())) {
    EXPECT_GE(p.module_id, 0);
    EXPECT_LT(p.module_id, phy::kNumModules);
    EXPECT_GT(p.confidence, 0.0);
    EXPECT_LE(p.confidence, 1.0);
  }
}

}  // namespace
}  // namespace deepcsi
