// Streaming serving subsystem: queue backpressure semantics, batching
// scheduler flush policies, per-station majority verdicts, and the
// single-producer determinism contract (verdicts bit-identical for any
// DEEPCSI_THREADS).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "capture/monitor.h"
#include "common/parallel.h"
#include "common/report_queue.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "dataset/features.h"
#include "dataset/traces.h"
#include "phy/impairments.h"
#include "serving/replay.h"
#include "serving/scheduler.h"
#include "serving/service.h"
#include "serving/session_table.h"
#include "test_util.h"

namespace deepcsi {
namespace {

using common::OverflowPolicy;
using common::ReportQueue;
using serving::FlushReason;
using tests::ThreadGuard;

// ------------------------------------------------------------- ReportQueue

TEST(ReportQueueTest, BlockPolicyWaitsForSpaceAndKeepsFifoOrder) {
  ReportQueue<int> q(2, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(0));
  ASSERT_TRUE(q.push(1));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // must block until the consumer makes room
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());

  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());

  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);

  const common::QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 3u);
  EXPECT_EQ(s.popped, 3u);
  EXPECT_EQ(s.dropped_oldest, 0u);
  EXPECT_EQ(s.rejected, 0u);
}

TEST(ReportQueueTest, DropOldestPolicyEvictsTheOldestUndrainedItem) {
  ReportQueue<int> q(3, OverflowPolicy::kDropOldest);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(i));  // push always succeeds

  const common::QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 8u);
  EXPECT_EQ(s.dropped_oldest, 5u);
  EXPECT_EQ(s.depth, 3u);

  int v = -1;
  for (int expect : {5, 6, 7}) {  // freshest three survive, in order
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(ReportQueueTest, RejectPolicyRefusesWhenFull) {
  ReportQueue<int> q(3, OverflowPolicy::kReject);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 3; i < 8; ++i) EXPECT_FALSE(q.push(i));

  const common::QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 3u);
  EXPECT_EQ(s.rejected, 5u);
  EXPECT_EQ(s.dropped_oldest, 0u);

  int v = -1;
  for (int expect : {0, 1, 2}) {  // the oldest items are the ones kept
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, expect);
  }
}

TEST(ReportQueueTest, CloseDrainsPendingItemsThenReportsClosed) {
  ReportQueue<int> q(8, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // intake stops immediately

  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // closed and drained
  EXPECT_EQ(q.stats().rejected, 1u);
}

// -------------------------------------------------------- BatchingScheduler

struct RecordedFlush {
  std::vector<int> items;
  FlushReason reason;
};

class FlushRecorder {
 public:
  serving::BatchingScheduler<int>::Sink sink() {
    return [this](std::vector<int>&& batch, FlushReason reason,
                  std::size_t /*lane*/) {
      std::lock_guard<std::mutex> lock(mu_);
      flushes_.push_back({std::move(batch), reason});
    };
  }
  std::vector<RecordedFlush> flushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flushes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<RecordedFlush> flushes_;
};

TEST(BatchingSchedulerTest, FlushesAtMaxBatchThenDrains) {
  // All nine items are queued (and the queue closed) before the scheduler
  // starts, so the batch boundaries are fully deterministic: 4, 4, 1.
  ReportQueue<int> q(64, OverflowPolicy::kBlock);
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(q.push(i));
  q.close();

  FlushRecorder recorder;
  serving::SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_latency = std::chrono::seconds(3600);  // deadline can never fire
  serving::BatchingScheduler<int> sched(q, cfg, recorder.sink());
  sched.start();
  sched.join();

  const auto flushes = recorder.flushes();
  ASSERT_EQ(flushes.size(), 3u);
  EXPECT_EQ(flushes[0].items, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(flushes[0].reason, FlushReason::kBatchFull);
  EXPECT_EQ(flushes[1].items, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(flushes[1].reason, FlushReason::kBatchFull);
  EXPECT_EQ(flushes[2].items, (std::vector<int>{8}));
  EXPECT_EQ(flushes[2].reason, FlushReason::kDrain);

  const serving::SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.items, 9u);
  EXPECT_EQ(stats.flush_full, 2u);
  EXPECT_EQ(stats.flush_drain, 1u);
  EXPECT_EQ(stats.max_batch_seen, 4u);
}

TEST(BatchingSchedulerTest, FlushesAtDeadlineWhenBatchStaysPartial) {
  // Three queued items against max_batch 64: only the latency deadline can
  // flush them, and it must flush all three together.
  ReportQueue<int> q(64, OverflowPolicy::kBlock);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.push(i));

  FlushRecorder recorder;
  serving::SchedulerConfig cfg;
  cfg.max_batch = 64;
  cfg.max_latency = std::chrono::milliseconds(25);
  serving::BatchingScheduler<int> sched(q, cfg, recorder.sink());
  sched.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sched.stats().batches == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  q.close();
  sched.join();
  const auto flushes = recorder.flushes();
  ASSERT_EQ(flushes.size(), 1u);
  EXPECT_EQ(flushes[0].items, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(flushes[0].reason, FlushReason::kDeadline);
  EXPECT_EQ(sched.stats().flush_deadline, 1u);
}

TEST(BatchingSchedulerTest, MultiLaneDrainsEveryQueueWithPerLaneFifoOrder) {
  // Two lanes, fully pre-loaded and closed: each lane must flush its own
  // queue in FIFO order on its own consumer thread, and the aggregate
  // stats must sum the lanes.
  ReportQueue<int> q0(64, OverflowPolicy::kBlock);
  ReportQueue<int> q1(64, OverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q0.push(i));
  for (int i = 100; i < 103; ++i) ASSERT_TRUE(q1.push(i));
  q0.close();
  q1.close();

  std::mutex mu;
  std::vector<std::vector<int>> per_lane(2);
  serving::SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.max_latency = std::chrono::seconds(3600);
  serving::BatchingScheduler<int> sched(
      std::vector<ReportQueue<int>*>{&q0, &q1}, cfg,
      [&](std::vector<int>&& batch, FlushReason, std::size_t lane) {
        std::lock_guard<std::mutex> lock(mu);
        for (int v : batch) per_lane[lane].push_back(v);
      });
  ASSERT_EQ(sched.num_lanes(), 2u);
  sched.start();
  sched.join();

  EXPECT_EQ(per_lane[0], (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(per_lane[1], (std::vector<int>{100, 101, 102}));
  const serving::SchedulerStats total = sched.stats();
  EXPECT_EQ(total.items, 8u);
  EXPECT_EQ(sched.lane_stats(0).items, 5u);
  EXPECT_EQ(sched.lane_stats(1).items, 3u);
  EXPECT_EQ(total.batches,
            sched.lane_stats(0).batches + sched.lane_stats(1).batches);
}

// ------------------------------------------------------------ SessionTable

core::Authenticator::Prediction pred(int module, double confidence = 0.9) {
  return core::Authenticator::Prediction{module, confidence};
}

TEST(SessionTableTest, RollingWindowMajorityEvictsOldVotes) {
  serving::SessionConfig cfg;
  cfg.window = 5;
  serving::SessionTable table(cfg);
  const capture::MacAddress mac = capture::MacAddress::for_station(1);

  for (int i = 0; i < 5; ++i) table.record(mac, pred(2), 0.1 * i);
  auto v = table.verdict(mac);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->module_id, 2);
  EXPECT_EQ(v->votes, 5u);

  // Three newer votes for module 7 push out three of the 2s: 7 wins 3-2.
  for (int i = 0; i < 3; ++i) table.record(mac, pred(7), 1.0 + 0.1 * i);
  v = table.verdict(mac);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->module_id, 7);
  EXPECT_EQ(v->votes, 3u);
  EXPECT_EQ(v->window_size, 5u);
  EXPECT_EQ(v->total_reports, 8u);
  EXPECT_DOUBLE_EQ(v->last_timestamp_s, 1.2);
}

TEST(SessionTableTest, TieBreaksTowardLowestModuleId) {
  serving::SessionConfig cfg;
  cfg.window = 4;
  serving::SessionTable table(cfg);
  const capture::MacAddress mac = capture::MacAddress::for_station(2);
  for (int module : {7, 2, 7, 2}) table.record(mac, pred(module), 0.0);
  const auto v = table.verdict(mac);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->module_id, 2);
  EXPECT_EQ(v->votes, 2u);
}

TEST(SessionTableTest, SnapshotIsSortedByMacAndKeepsStationsApart) {
  serving::SessionTable table({/*window=*/8, /*num_shards=*/4});
  for (int s = 9; s >= 0; --s)
    table.record(capture::MacAddress::for_station(s), pred(s % 3), 1.0 * s);
  EXPECT_EQ(table.num_stations(), 10u);

  const auto snapshot = table.snapshot();
  ASSERT_EQ(snapshot.size(), 10u);
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(snapshot[static_cast<std::size_t>(s)].station,
              capture::MacAddress::for_station(s));
    EXPECT_EQ(snapshot[static_cast<std::size_t>(s)].module_id, s % 3);
  }
  EXPECT_FALSE(table.verdict(capture::MacAddress::for_station(11)).has_value());
}

// ------------------------------------------------------------- AuthService

core::Authenticator make_authenticator(const dataset::InputSpec& spec) {
  return core::Authenticator(
      core::build_deepcsi_model(dataset::num_input_channels(spec),
                                static_cast<int>(dataset::num_input_columns(spec)),
                                phy::kNumModules, core::quick_model_config()),
      spec);
}

// An interleaved two-station stream: station 0 emits module-0 reports,
// station 1 emits module-1 reports, alternating frame by frame.
std::vector<capture::ObservedFeedback> make_two_station_stream() {
  dataset::Scale scale;
  scale.d1_snapshots_per_trace = 6;
  std::vector<std::vector<feedback::CompressedFeedbackReport>> per_station;
  for (int module : {0, 1}) {
    const dataset::Trace trace =
        dataset::generate_d1_trace(module, 1, 0, scale, {});
    std::vector<feedback::CompressedFeedbackReport> reports;
    for (const dataset::Snapshot& s : trace.snapshots)
      reports.push_back(s.report);
    per_station.push_back(std::move(reports));
  }
  std::vector<capture::ObservedFeedback> stream;
  for (std::size_t i = 0; i < per_station[0].size(); ++i) {
    for (int station : {0, 1}) {
      capture::ObservedFeedback obs;
      obs.timestamp_s = 0.01 * static_cast<double>(stream.size());
      obs.beamformee = capture::MacAddress::for_station(station);
      obs.beamformer = capture::MacAddress::for_module(0);
      obs.report = per_station[static_cast<std::size_t>(station)][i];
      stream.push_back(std::move(obs));
    }
  }
  return stream;
}

serving::ServiceConfig small_service_config() {
  serving::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.scheduler.max_batch = 8;
  cfg.scheduler.max_latency = std::chrono::milliseconds(2);
  cfg.sessions.window = 31;
  return cfg;
}

TEST(AuthServiceTest, PerStationVerdictsMatchOfflineMajority) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  const auto stream = make_two_station_stream();

  serving::AuthService service(auth, small_service_config());
  service.start();
  for (const auto& obs : stream) ASSERT_TRUE(service.submit(obs));
  service.drain();

  const serving::StatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.reports_classified, stream.size());
  EXPECT_EQ(service.sessions().num_stations(), 2u);

  // Offline reference: per-report classify + majority vote per station.
  for (int station : {0, 1}) {
    const capture::MacAddress mac = capture::MacAddress::for_station(station);
    std::map<int, std::size_t> votes;
    std::size_t n = 0;
    for (const auto& obs : stream) {
      if (!(obs.beamformee == mac)) continue;
      ++votes[auth.classify(obs.report).module_id];
      ++n;
    }
    int best = -1;
    std::size_t best_votes = 0;
    for (const auto& [id, count] : votes)
      if (count > best_votes) {
        best = id;
        best_votes = count;
      }
    const auto v = service.sessions().verdict(mac);
    ASSERT_TRUE(v.has_value()) << "station " << station;
    EXPECT_EQ(v->module_id, best) << "station " << station;
    EXPECT_EQ(v->votes, best_votes) << "station " << station;
    EXPECT_EQ(v->window_size, n) << "station " << station;
    EXPECT_EQ(v->total_reports, n) << "station " << station;
  }
}

TEST(AuthServiceTest, SingleProducerVerdictsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  const auto stream = make_two_station_stream();

  auto run_once = [&] {
    serving::AuthService service(auth, small_service_config());
    serving::ReplayConfig replay;  // one producer, one loop, unpaced
    const serving::ReplayResult rr =
        serving::replay_observed(service, stream, replay);
    EXPECT_EQ(rr.accepted, stream.size());
    return service.sessions().snapshot();
  };

  common::set_num_threads(1);
  const auto verdicts_1t = run_once();
  common::set_num_threads(4);
  const auto verdicts_4t = run_once();

  ASSERT_EQ(verdicts_1t.size(), 2u);
  ASSERT_EQ(verdicts_4t.size(), verdicts_1t.size());
  for (std::size_t i = 0; i < verdicts_1t.size(); ++i) {
    EXPECT_EQ(verdicts_1t[i].station, verdicts_4t[i].station);
    EXPECT_EQ(verdicts_1t[i].module_id, verdicts_4t[i].module_id);
    EXPECT_EQ(verdicts_1t[i].votes, verdicts_4t[i].votes);
    EXPECT_EQ(verdicts_1t[i].window_size, verdicts_4t[i].window_size);
    EXPECT_EQ(verdicts_1t[i].total_reports, verdicts_4t[i].total_reports);
    // Bit-identical, not approximately equal: same stream order => same
    // accumulation order => the same doubles.
    EXPECT_EQ(verdicts_1t[i].mean_confidence, verdicts_4t[i].mean_confidence);
    EXPECT_EQ(verdicts_1t[i].last_timestamp_s, verdicts_4t[i].last_timestamp_s);
  }
}

// A wider interleaved stream so several lanes get work: `stations`
// beamformees, station s emitting module-(s % kNumModules) reports.
std::vector<capture::ObservedFeedback> make_multi_station_stream(
    int stations) {
  dataset::Scale scale;
  scale.d1_snapshots_per_trace = 6;
  std::vector<std::vector<feedback::CompressedFeedbackReport>> per_station;
  for (int s = 0; s < stations; ++s) {
    const dataset::Trace trace = dataset::generate_d1_trace(
        s % phy::kNumModules, 1, 0, scale, {});
    std::vector<feedback::CompressedFeedbackReport> reports;
    for (const dataset::Snapshot& snap : trace.snapshots)
      reports.push_back(snap.report);
    per_station.push_back(std::move(reports));
  }
  std::vector<capture::ObservedFeedback> stream;
  for (std::size_t i = 0; i < per_station[0].size(); ++i)
    for (int s = 0; s < stations; ++s) {
      capture::ObservedFeedback obs;
      obs.timestamp_s = 0.01 * static_cast<double>(stream.size());
      obs.beamformee = capture::MacAddress::for_station(s);
      obs.beamformer = capture::MacAddress::for_module(0);
      obs.report = per_station[static_cast<std::size_t>(s)][i];
      stream.push_back(std::move(obs));
    }
  return stream;
}

TEST(AuthServiceTest, MultiConsumerVerdictsMatchSingleConsumer) {
  // The tentpole guarantee: sharding stations across N consumer lanes
  // changes throughput, never verdicts. Every field — including the
  // mean-confidence double — must match the single-consumer run exactly.
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  const auto stream = make_multi_station_stream(6);

  auto run_with_consumers = [&](std::size_t consumers) {
    serving::ServiceConfig cfg = small_service_config();
    cfg.consumers = consumers;
    serving::AuthService service(auth, cfg);
    serving::ReplayConfig replay;  // one producer, one loop, unpaced
    const serving::ReplayResult rr =
        serving::replay_observed(service, stream, replay);
    EXPECT_EQ(rr.accepted, stream.size());
    EXPECT_EQ(service.num_lanes(), consumers);
    const serving::StatsSnapshot stats = service.stats();
    EXPECT_EQ(stats.reports_classified, stream.size());
    EXPECT_EQ(stats.consumers, consumers);
    // Per-lane scheduler items must add up to the whole stream.
    std::size_t lane_items = 0;
    for (std::size_t lane = 0; lane < service.num_lanes(); ++lane)
      lane_items += service.lane_stats(lane).scheduler.items;
    EXPECT_EQ(lane_items, stream.size());
    return service.sessions().snapshot();
  };

  const auto single = run_with_consumers(1);
  ASSERT_EQ(single.size(), 6u);
  for (const std::size_t consumers : {std::size_t{2}, std::size_t{4}}) {
    const auto multi = run_with_consumers(consumers);
    ASSERT_EQ(multi.size(), single.size()) << consumers << " consumers";
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(multi[i].station, single[i].station);
      EXPECT_EQ(multi[i].module_id, single[i].module_id);
      EXPECT_EQ(multi[i].votes, single[i].votes);
      EXPECT_EQ(multi[i].window_size, single[i].window_size);
      EXPECT_EQ(multi[i].total_reports, single[i].total_reports);
      // Bit-identical: one station's predictions arrive in stream order
      // on one lane, so the confidence accumulation order is fixed.
      EXPECT_EQ(multi[i].mean_confidence, single[i].mean_confidence);
      EXPECT_EQ(multi[i].last_timestamp_s, single[i].last_timestamp_s);
    }
  }
}

TEST(AuthServiceTest, RejectPolicyShedsLoadWithoutLosingAcceptedReports) {
  dataset::InputSpec spec;
  spec.subcarrier_stride = 4;
  const core::Authenticator auth = make_authenticator(spec);
  const auto stream = make_two_station_stream();

  serving::ServiceConfig cfg = small_service_config();
  cfg.queue_capacity = 2;  // force rejects: producers outrun the classifier
  cfg.policy = common::OverflowPolicy::kReject;
  serving::AuthService service(auth, cfg);
  service.start();
  std::size_t accepted = 0;
  for (const auto& obs : stream)
    if (service.submit(obs)) ++accepted;
  service.drain();

  const serving::StatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.reports_classified, accepted);
  EXPECT_EQ(stats.queue.rejected + accepted, stream.size());
  EXPECT_GE(accepted, 1u);  // at least the first submit fit the empty queue
}

}  // namespace
}  // namespace deepcsi
