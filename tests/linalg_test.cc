// Complex matrix and SVD properties. The SVD feeds the beamforming
// feedback, so correctness here underpins every experiment.
#include <gtest/gtest.h>

#include <random>

#include "linalg/cmat.h"
#include "linalg/svd.h"

namespace deepcsi::linalg {
namespace {

TEST(CMatTest, IdentityAndEye) {
  const CMat id = CMat::identity(3);
  EXPECT_EQ(id(0, 0), cplx(1.0, 0.0));
  EXPECT_EQ(id(0, 1), cplx(0.0, 0.0));
  const CMat eye = CMat::eye(3, 2);
  EXPECT_EQ(eye.rows(), 3u);
  EXPECT_EQ(eye.cols(), 2u);
  EXPECT_EQ(eye(0, 0), cplx(1.0, 0.0));
  EXPECT_EQ(eye(1, 1), cplx(1.0, 0.0));
  EXPECT_EQ(eye(2, 0), cplx(0.0, 0.0));
  EXPECT_EQ(eye(2, 1), cplx(0.0, 0.0));
}

TEST(CMatTest, DiagConstruction) {
  const CMat d = CMat::diag({cplx(1.0, 2.0), cplx(3.0, -1.0)});
  EXPECT_EQ(d(0, 0), cplx(1.0, 2.0));
  EXPECT_EQ(d(1, 1), cplx(3.0, -1.0));
  EXPECT_EQ(d(0, 1), cplx(0.0, 0.0));
}

TEST(CMatTest, HermitianConjugatesAndTransposes) {
  CMat a(2, 3);
  a(0, 1) = cplx(1.0, 2.0);
  const CMat h = a.hermitian();
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_EQ(h(1, 0), cplx(1.0, -2.0));
}

TEST(CMatTest, MatMulAgainstHandComputed) {
  CMat a(2, 2), b(2, 2);
  a(0, 0) = {1, 1};
  a(0, 1) = {2, 0};
  a(1, 0) = {0, -1};
  a(1, 1) = {1, 0};
  b(0, 0) = {1, 0};
  b(0, 1) = {0, 1};
  b(1, 0) = {2, 0};
  b(1, 1) = {1, 1};
  const CMat c = a * b;
  EXPECT_NEAR(std::abs(c(0, 0) - cplx(5, 1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(c(0, 1) - cplx(1, 3)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(c(1, 0) - cplx(2, -1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(c(1, 1) - cplx(2, 1)), 0.0, 1e-12);
}

TEST(CMatTest, MatMulShapeMismatchThrows) {
  CMat a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::logic_error);
}

TEST(CMatTest, AddSubtractScale) {
  std::mt19937_64 rng(7);
  const CMat a = CMat::random_gaussian(3, 3, rng);
  const CMat b = CMat::random_gaussian(3, 3, rng);
  const CMat s = a + b;
  const CMat d = s - b;
  EXPECT_LT(max_abs_diff(d, a), 1e-12);
  CMat scaled = a * cplx(2.0, 0.0);
  scaled *= cplx(0.5, 0.0);
  EXPECT_LT(max_abs_diff(scaled, a), 1e-12);
}

TEST(CMatTest, FrobeniusNormMatchesDefinition) {
  CMat a(1, 2);
  a(0, 0) = {3.0, 0.0};
  a(0, 1) = {0.0, 4.0};
  EXPECT_NEAR(a.frobenius_norm(), 5.0, 1e-12);
}

TEST(CMatTest, ScaleRowAndColumn) {
  std::mt19937_64 rng(9);
  CMat a = CMat::random_gaussian(3, 2, rng);
  CMat b = a;
  b.scale_row(1, cplx(0.0, 1.0));
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_NEAR(std::abs(b(1, c) - a(1, c) * cplx(0.0, 1.0)), 0.0, 1e-12);
  b = a;
  b.scale_col(0, cplx(2.0, 0.0));
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_NEAR(std::abs(b(r, 0) - a(r, 0) * 2.0), 0.0, 1e-12);
}

TEST(SvdTest, ReconstructsDiagonalMatrix) {
  const CMat a = CMat::diag({cplx(3.0, 0.0), cplx(1.0, 0.0)});
  const Svd d = svd(a);
  EXPECT_NEAR(d.s[0], 3.0, 1e-12);
  EXPECT_NEAR(d.s[1], 1.0, 1e-12);
  EXPECT_LT(max_abs_diff(svd_reconstruct(d), a), 1e-12);
}

TEST(SvdTest, SingularValuesSortedDescending) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const CMat a = CMat::random_gaussian(3, 2, rng);
    const Svd d = svd(a);
    for (std::size_t i = 1; i < d.s.size(); ++i)
      EXPECT_GE(d.s[i - 1], d.s[i]);
  }
}

// Property sweep over the shapes that occur in the sounding pipeline.
class SvdShapeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdShapeTest, ThinFactorsAreOrthonormalAndReconstruct) {
  const auto [rows, cols] = GetParam();
  std::mt19937_64 rng(1000 * rows + cols);
  for (int trial = 0; trial < 25; ++trial) {
    const CMat a = CMat::random_gaussian(rows, cols, rng);
    const Svd d = svd(a);
    const std::size_t r = std::min(rows, cols);
    ASSERT_EQ(d.s.size(), r);
    ASSERT_EQ(d.u.rows(), rows);
    ASSERT_EQ(d.u.cols(), r);
    ASSERT_EQ(d.v.rows(), cols);
    ASSERT_EQ(d.v.cols(), r);
    EXPECT_LT(orthonormality_defect(d.u), 1e-10);
    EXPECT_LT(orthonormality_defect(d.v), 1e-10);
    EXPECT_LT(max_abs_diff(svd_reconstruct(d), a), 1e-10);
    for (double s : d.s) EXPECT_GE(s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, SvdShapeTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{3, 2},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{3, 1},
                      std::pair<std::size_t, std::size_t>{1, 3}));

TEST(SvdTest, RankDeficientGetsZeroSingularValueAndOrthonormalBasis) {
  CMat a(3, 2);
  // Second column = 2 * first column -> rank 1.
  std::mt19937_64 rng(5);
  const CMat col = CMat::random_gaussian(3, 1, rng);
  for (std::size_t r = 0; r < 3; ++r) {
    a(r, 0) = col(r, 0);
    a(r, 1) = col(r, 0) * 2.0;
  }
  const Svd d = svd(a);
  EXPECT_NEAR(d.s[1], 0.0, 1e-10);
  EXPECT_GT(d.s[0], 0.0);
  EXPECT_LT(orthonormality_defect(d.u), 1e-8);
  EXPECT_LT(max_abs_diff(svd_reconstruct(d), a), 1e-10);
}

TEST(SvdTest, ScalarPhaseLeavesRightSingularVectorsInvariant) {
  // The invariance that makes V blind to common-phase offsets (PPO, common
  // CFO): e^{j theta} A has the same right singular subspace as A.
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const CMat a = CMat::random_gaussian(2, 3, rng);
    std::uniform_real_distribution<double> u(-3.14, 3.14);
    const CMat b = a * std::polar(1.0, u(rng));
    const Svd da = svd(a);
    const Svd db = svd(b);
    EXPECT_LT(subspace_distance(da.v, db.v), 1e-7);
    for (std::size_t i = 0; i < da.s.size(); ++i)
      EXPECT_NEAR(da.s[i], db.s[i], 1e-10);
  }
}

TEST(SvdTest, UnitaryDiagonalRightFactorTransfersIntoV) {
  // Per-TX-chain phase offsets D (unitary diagonal) satisfy:
  // right singular vectors of A*D are D^dagger * (those of A).
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const CMat a = CMat::random_gaussian(2, 3, rng);
    std::uniform_real_distribution<double> u(-3.14, 3.14);
    const CMat d = CMat::diag({std::polar(1.0, u(rng)), std::polar(1.0, u(rng)),
                               std::polar(1.0, u(rng))});
    const CMat ad = a * d;
    const Svd s1 = svd(a);
    const Svd s2 = svd(ad);
    // Spans must match after undoing the rotation.
    EXPECT_LT(subspace_distance(d.hermitian() * s1.v, s2.v), 1e-7);
  }
}

TEST(SubspaceDistanceTest, ZeroForSameSpanAndPositiveOtherwise) {
  std::mt19937_64 rng(11);
  const CMat a = CMat::random_gaussian(3, 3, rng);
  const Svd d = svd(a);
  const CMat v1 = d.v.first_columns(2);
  CMat v2 = v1;
  v2.scale_col(0, std::polar(1.0, 1.2));  // per-column phase is irrelevant
  EXPECT_LT(subspace_distance(v1, v2), 1e-7);
  CMat v3 = v1;
  v3.set_column(1, d.v.column(2));  // different subspace
  EXPECT_GT(subspace_distance(v1, v3), 0.5);
}

TEST(SvdTest, EmptyMatrixThrows) {
  EXPECT_THROW(svd(CMat()), std::logic_error);
}

}  // namespace
}  // namespace deepcsi::linalg
