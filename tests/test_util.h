// Shared helpers for the test binaries.
#pragma once

#include "common/parallel.h"
#include "nn/simd.h"

namespace deepcsi::tests {

// Restores the global pool size on scope exit so tests stay independent.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(common::num_threads()) {}
  ~ThreadGuard() { common::set_num_threads(saved_); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  int saved_;
};

// Restores the active SIMD backend on scope exit.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::active()) {}
  ~BackendGuard() { simd::set_active(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  simd::Backend saved_;
};

// Tests loop over simd::available_backends() so the same bit-identity
// contracts are pinned under every backend the host can run.
using simd::available_backends;

}  // namespace deepcsi::tests
