// Shared helpers for the test binaries.
#pragma once

#include "common/parallel.h"

namespace deepcsi::tests {

// Restores the global pool size on scope exit so tests stay independent.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(common::num_threads()) {}
  ~ThreadGuard() { common::set_num_threads(saved_); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  int saved_;
};

}  // namespace deepcsi::tests
