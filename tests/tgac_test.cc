// TGac stochastic channel substrate: PDP shape, normalization, frequency
// selectivity, and statistical behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/tgac.h"

namespace deepcsi::phy {
namespace {

TEST(TgacTest, ProfilesHaveDocumentedDelaySpreads) {
  EXPECT_DOUBLE_EQ(tgac_rms_delay_spread_s(TgacProfile::kModelB), 15e-9);
  EXPECT_DOUBLE_EQ(tgac_rms_delay_spread_s(TgacProfile::kModelD), 50e-9);
}

TEST(TgacTest, TapPowersNormalizedAndDecaying) {
  const TgacChannel ch;
  const auto& p = ch.tap_powers();
  ASSERT_EQ(p.size(), 10u);
  double sum = 0.0;
  for (std::size_t t = 1; t < p.size(); ++t) {
    EXPECT_LT(p[t], p[t - 1]);  // exponential decay
    sum += p[t];
  }
  sum += p[0];
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(TgacTest, ModelBDecaysFasterThanModelD) {
  TgacParams b;
  b.profile = TgacProfile::kModelB;
  TgacParams d;
  d.profile = TgacProfile::kModelD;
  const TgacChannel chb(b), chd(d);
  // Same first-tap normalization: model B concentrates more power early.
  EXPECT_GT(chb.tap_powers()[0], chd.tap_powers()[0]);
  EXPECT_LT(chb.tap_powers()[9], chd.tap_powers()[9]);
}

TEST(TgacTest, RealizationShapeAndPower) {
  const TgacChannel ch;
  std::mt19937_64 rng(1);
  const std::vector<int> sc{-100, -50, -2, 2, 50, 100};
  double pow_acc = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const Cfr cfr = ch.realize(3, 2, sc, rng);
    ASSERT_EQ(cfr.h.size(), sc.size());
    EXPECT_EQ(cfr.h[0].rows(), 3u);
    EXPECT_EQ(cfr.h[0].cols(), 2u);
    for (const auto& h : cfr.h)
      for (const auto& v : h.data()) pow_acc += std::norm(v);
  }
  // E|H(k)|^2 = 1 per antenna pair by construction.
  const double mean_pow =
      pow_acc / (trials * static_cast<double>(sc.size()) * 6.0);
  EXPECT_NEAR(mean_pow, 1.0, 0.1);
}

TEST(TgacTest, FrequencySelectivityGrowsWithDelaySpread) {
  // Correlation between band edges should be lower for Model D (50 ns)
  // than Model B (15 ns).
  auto edge_decorrelation = [](TgacProfile prof) {
    TgacParams p;
    p.profile = prof;
    p.k_factor = 0.0;
    const TgacChannel ch(p);
    std::mt19937_64 rng(7);
    const std::vector<int> sc{-122, 122};
    double corr = 0.0, pow0 = 0.0, pow1 = 0.0;
    for (int t = 0; t < 2000; ++t) {
      const Cfr cfr = ch.realize(1, 1, sc, rng);
      const auto a = cfr.h[0](0, 0), b = cfr.h[1](0, 0);
      corr += (a * std::conj(b)).real();
      pow0 += std::norm(a);
      pow1 += std::norm(b);
    }
    return std::abs(corr) / std::sqrt(pow0 * pow1);
  };
  const double rb = edge_decorrelation(TgacProfile::kModelB);
  const double rd = edge_decorrelation(TgacProfile::kModelD);
  EXPECT_LT(rd, rb);
}

TEST(TgacTest, KFactorControlsLosDominance) {
  // With a huge K factor the first tap is nearly deterministic in
  // magnitude; with K = 0 it is Rayleigh. Compare magnitude variance of
  // H at one sub-carrier... use single tap to isolate.
  auto mag_variance = [](double k_factor) {
    TgacParams p;
    p.num_taps = 1;
    p.k_factor = k_factor;
    const TgacChannel ch(p);
    std::mt19937_64 rng(11);
    std::vector<double> mags;
    for (int t = 0; t < 3000; ++t)
      mags.push_back(std::abs(ch.realize(1, 1, {0 + 2}, rng).h[0](0, 0)));
    double mean = 0.0;
    for (double m : mags) mean += m;
    mean /= static_cast<double>(mags.size());
    double var = 0.0;
    for (double m : mags) var += (m - mean) * (m - mean);
    return var / static_cast<double>(mags.size());
  };
  EXPECT_LT(mag_variance(50.0), mag_variance(0.0));
}

TEST(TgacTest, ParameterValidation) {
  TgacParams p;
  p.num_taps = 0;
  EXPECT_THROW(TgacChannel{p}, std::logic_error);
  p.num_taps = 4;
  p.tap_spacing_s = 0.0;
  EXPECT_THROW(TgacChannel{p}, std::logic_error);
  const TgacChannel ok;
  std::mt19937_64 rng(1);
  EXPECT_THROW(ok.realize(0, 1, {1}, rng), std::logic_error);
  EXPECT_THROW(ok.realize(1, 1, {}, rng), std::logic_error);
}

}  // namespace
}  // namespace deepcsi::phy
