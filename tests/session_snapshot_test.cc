// Crash-safe session persistence: a SessionTable snapshot written with
// save_snapshot and loaded with restore_snapshot must be
// indistinguishable — bit for bit, including the rolling-window
// confidence sums — from a table that never restarted, and any damaged
// file must be refused whole (kCorrupt) without touching the table's
// existing state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "capture/mac.h"
#include "common/hash.h"
#include "serving/session_table.h"

namespace deepcsi {
namespace {

using serving::SessionConfig;
using serving::SessionTable;
using serving::StationVerdict;

std::string scratch_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Deterministic prediction stream: station, module and confidence all
// derived from a counter through mix64, so every run (and both tables in
// a divergence check) sees the identical sequence.
core::Authenticator::Prediction synth_prediction(std::uint64_t i) {
  core::Authenticator::Prediction p;
  p.module_id = static_cast<int>(common::mix64(i * 2 + 1) % 10);
  // Irregular mantissas, not round numbers — bit-exactness must survive
  // real doubles.
  p.confidence =
      0.5 + static_cast<double>(common::mix64(i * 2 + 2) % 1000003) * 1e-7;
  return p;
}

void feed(SessionTable& table, std::uint64_t first, std::uint64_t count,
          int stations) {
  for (std::uint64_t i = first; i < first + count; ++i) {
    const auto station = capture::MacAddress::for_station(
        static_cast<int>(i % static_cast<std::uint64_t>(stations)));
    table.record(station, synth_prediction(i), 0.01 * static_cast<double>(i));
  }
}

void expect_identical(const std::vector<StationVerdict>& a,
                      const std::vector<StationVerdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].station, b[i].station);
    EXPECT_EQ(a[i].module_id, b[i].module_id);
    EXPECT_EQ(a[i].votes, b[i].votes);
    EXPECT_EQ(a[i].window_size, b[i].window_size);
    EXPECT_EQ(a[i].total_reports, b[i].total_reports);
    // Bit-for-bit, not approximately: the snapshot stores the window's
    // confidence sum exactly so a restored table reports the same mean a
    // never-restarted process would.
    EXPECT_EQ(a[i].mean_confidence, b[i].mean_confidence);
    EXPECT_EQ(a[i].last_timestamp_s, b[i].last_timestamp_s);
  }
}

TEST(SessionSnapshotTest, RoundTripIsFieldForFieldIdentical) {
  const std::string path = scratch_path("roundtrip.snap");
  SessionConfig cfg;
  cfg.window = 7;
  SessionTable table(cfg);
  feed(table, 0, 200, 5);  // windows full, counters past one window
  table.save_snapshot(path);

  SessionTable restored(cfg);
  std::string err;
  ASSERT_EQ(restored.restore_snapshot(path, &err), SessionTable::RestoreStatus::kRestored)
      << err;
  EXPECT_EQ(restored.num_stations(), table.num_stations());
  expect_identical(restored.snapshot(), table.snapshot());
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, RestoredTableContinuesExactlyLikeTheOriginal) {
  // The kill -9 scenario in miniature: snapshot mid-stream, keep feeding
  // BOTH the original and the restored copy the same tail, and demand the
  // verdicts never diverge — rolling majorities survive the restart.
  const std::string path = scratch_path("continue.snap");
  SessionConfig cfg;
  cfg.window = 9;
  SessionTable original(cfg);
  feed(original, 0, 123, 4);  // odd cut: windows mid-roll
  original.save_snapshot(path);

  SessionTable restored(cfg);
  ASSERT_EQ(restored.restore_snapshot(path), SessionTable::RestoreStatus::kRestored);

  feed(original, 123, 77, 4);
  feed(restored, 123, 77, 4);
  expect_identical(restored.snapshot(), original.snapshot());
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, EmptyTableRoundTrips) {
  const std::string path = scratch_path("empty.snap");
  SessionTable table(SessionConfig{});
  table.save_snapshot(path);
  SessionTable restored(SessionConfig{});
  ASSERT_EQ(restored.restore_snapshot(path), SessionTable::RestoreStatus::kRestored);
  EXPECT_EQ(restored.num_stations(), 0u);
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, MissingFileIsAColdStartNotAnError) {
  SessionTable table(SessionConfig{});
  std::string err = "untouched";
  EXPECT_EQ(table.restore_snapshot(scratch_path("never-written.snap"), &err),
            SessionTable::RestoreStatus::kNoFile);
}

TEST(SessionSnapshotTest, CorruptionIsRefusedWholeAndTheTableKeepsItsState) {
  const std::string path = scratch_path("corrupt.snap");
  SessionConfig cfg;
  cfg.window = 5;
  SessionTable source(cfg);
  feed(source, 0, 60, 3);
  source.save_snapshot(path);

  // Read the image, then write damaged variants over it.
  std::vector<std::uint8_t> image;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::uint8_t buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
      image.insert(image.end(), buf, buf + n);
    std::fclose(f);
  }
  ASSERT_GT(image.size(), 32u);

  // A table with live state the corrupt restore must not disturb.
  SessionTable victim(cfg);
  feed(victim, 1000, 40, 2);
  const auto before = victim.snapshot();

  const auto write_variant = [&](std::vector<std::uint8_t> bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty())
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  };

  // Flip one payload byte: the CRC trailer must catch it.
  std::vector<std::uint8_t> flipped = image;
  flipped[image.size() / 2] ^= 0x40;
  write_variant(flipped);
  std::string err;
  EXPECT_EQ(victim.restore_snapshot(path, &err),
            SessionTable::RestoreStatus::kCorrupt);
  EXPECT_FALSE(err.empty());

  // Truncated mid-file.
  write_variant(std::vector<std::uint8_t>(image.begin(),
                                          image.begin() + image.size() / 2));
  EXPECT_EQ(victim.restore_snapshot(path),
            SessionTable::RestoreStatus::kCorrupt);

  // Wrong magic.
  std::vector<std::uint8_t> bad_magic = image;
  bad_magic[0] ^= 0xFF;
  write_variant(bad_magic);
  EXPECT_EQ(victim.restore_snapshot(path),
            SessionTable::RestoreStatus::kCorrupt);

  // Shorter than any header.
  write_variant({0x01, 0x02, 0x03});
  EXPECT_EQ(victim.restore_snapshot(path),
            SessionTable::RestoreStatus::kCorrupt);

  // Every refusal left the victim exactly as it was.
  expect_identical(victim.snapshot(), before);
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, SnapshotSurvivesHotSwapWithDriftEwmaReset) {
  // The model-lifecycle contract: a snapshot written under serving epoch
  // N restores cleanly into a process that hot-swapped to epoch N+1.
  // Rolling windows, votes and lifetime counters carry over bit-for-bit
  // — verdict continuity does not care which weights produced the
  // predictions. The drift EWMA does care (it measures THIS model's
  // confidence), so it is deliberately NOT in the image: every restored
  // session re-warms from zero observations, exactly like reset_drift()
  // after an in-process swap.
  const std::string path = scratch_path("epoch-swap.snap");
  SessionConfig cfg;
  cfg.window = 9;
  cfg.drift_threshold = 0.9;  // synth confidences sit near 0.5: all drift
  cfg.drift_min_reports = 4;
  SessionTable original(cfg);
  feed(original, 0, 123, 4);
  ASSERT_GT(original.stats().stations_drifting, 0u);
  for (const StationVerdict& v : original.snapshot()) {
    EXPECT_GT(v.confidence_ewma, 0.0);
    EXPECT_TRUE(v.drifting);
  }
  original.save_snapshot(path);  // the "epoch N" image

  // "Epoch N+1": the original swaps in-process (reset_drift), while a
  // second process restores the same image cold. Both must agree.
  original.reset_drift();
  EXPECT_EQ(original.stats().stations_drifting, 0u);
  SessionTable restored(cfg);
  ASSERT_EQ(restored.restore_snapshot(path),
            SessionTable::RestoreStatus::kRestored);
  EXPECT_EQ(restored.stats().stations_drifting, 0u);
  for (const StationVerdict& v : restored.snapshot()) {
    EXPECT_EQ(v.confidence_ewma, 0.0);  // not persisted, by design
    EXPECT_FALSE(v.drifting);
  }
  expect_identical(restored.snapshot(), original.snapshot());

  // Under the new epoch both re-warm identically: same tail of
  // predictions, same EWMAs, same drift flags, same verdicts.
  feed(original, 123, 77, 4);
  feed(restored, 123, 77, 4);
  expect_identical(restored.snapshot(), original.snapshot());
  const auto a = original.snapshot();
  const auto b = restored.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].confidence_ewma, b[i].confidence_ewma);
    EXPECT_EQ(a[i].drifting, b[i].drifting);
  }
  EXPECT_EQ(original.stats().stations_drifting,
            restored.stats().stations_drifting);
  EXPECT_GT(restored.stats().stations_drifting, 0u);  // re-flagged by tail
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, WindowMismatchIsRefused) {
  // A snapshot taken under one verdict window cannot be folded into a
  // table configured with another: the rolling majorities would silently
  // mean something different. Refuse instead.
  const std::string path = scratch_path("window.snap");
  SessionConfig cfg;
  cfg.window = 7;
  SessionTable source(cfg);
  feed(source, 0, 30, 2);
  source.save_snapshot(path);

  SessionConfig other = cfg;
  other.window = 11;
  SessionTable victim(other);
  std::string err;
  EXPECT_EQ(victim.restore_snapshot(path, &err),
            SessionTable::RestoreStatus::kCorrupt);
  EXPECT_NE(err.find("window"), std::string::npos) << err;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepcsi
