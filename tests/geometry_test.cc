// Fig. 6 scene: beamformee grid and the A-B-C-D-B-A mobility path.
#include <gtest/gtest.h>

#include "phy/geometry.h"

namespace deepcsi::phy {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1, 2, 3}, b{0.5, -1, 2};
  const Point s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 1.5);
  EXPECT_DOUBLE_EQ(s.y, 1.0);
  EXPECT_DOUBLE_EQ(s.z, 5.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
  EXPECT_NEAR(distance({0, 0, 0}, {3, 4, 0}), 5.0, 1e-12);
}

TEST(SceneTest, TwoEnvironmentsDiffer) {
  const Scene e0(0), e1(1);
  EXPECT_NE(e0.environment().room.width, e1.environment().room.width);
  EXPECT_NE(e0.environment().clutter.size(), e1.environment().clutter.size());
}

TEST(SceneTest, InvalidEnvironmentThrows) {
  EXPECT_THROW(Scene(2), std::logic_error);
  EXPECT_THROW(Scene(-1), std::logic_error);
}

TEST(SceneTest, BeamformeesSitInFrontOfApAndStepOutward) {
  const Scene scene(0);
  const Point ap = scene.ap_position_a();
  for (int bf : {0, 1}) {
    const Point p1 = scene.beamformee_position(bf, 1);
    EXPECT_NEAR(p1.y - ap.y, 2.6, 1e-12);  // 2.6 m in front (Fig. 6)
    // Steps of 10 cm away from the axis.
    for (int pos = 2; pos <= kNumBeamformeePositions; ++pos) {
      const Point prev = scene.beamformee_position(bf, pos - 1);
      const Point cur = scene.beamformee_position(bf, pos);
      const double step = bf == 0 ? prev.x - cur.x : cur.x - prev.x;
      EXPECT_NEAR(step, kPositionStepMeters, 1e-12);
      EXPECT_DOUBLE_EQ(cur.y, prev.y);
    }
  }
  // BF0 moves left, BF1 right: they straddle the AP axis.
  EXPECT_LT(scene.beamformee_position(0, 1).x, ap.x);
  EXPECT_GT(scene.beamformee_position(1, 1).x, ap.x);
}

TEST(SceneTest, BeamformeePositionRangeChecked) {
  const Scene scene(0);
  EXPECT_THROW(scene.beamformee_position(0, 0), std::logic_error);
  EXPECT_THROW(scene.beamformee_position(0, 10), std::logic_error);
  EXPECT_THROW(scene.beamformee_position(2, 1), std::logic_error);
}

TEST(SceneTest, MobilityPathVisitsABCDBA) {
  const Scene scene(0);
  const Point a = scene.ap_position_a();
  const Point start = scene.mobility_path(0.0);
  const Point end = scene.mobility_path(1.0);
  EXPECT_NEAR(distance(start, a), 0.0, 1e-9);
  EXPECT_NEAR(distance(end, a), 0.0, 1e-9);

  // B is 0.8 m toward the beamformees (fraction 0.8/4.8).
  const Point b = scene.mobility_path(0.8 / 4.8);
  EXPECT_NEAR(b.y - a.y, 0.8, 1e-9);
  EXPECT_NEAR(b.x, a.x, 1e-9);
  // C: 0.8 m left of B (fraction 1.6/4.8).
  const Point c = scene.mobility_path(1.6 / 4.8);
  EXPECT_NEAR(c.x - a.x, -0.8, 1e-9);
  // D: 1.6 m right of C (fraction 3.2/4.8).
  const Point d = scene.mobility_path(3.2 / 4.8);
  EXPECT_NEAR(d.x - a.x, 0.8, 1e-9);
  // Back through B at fraction 4/4.8.
  const Point b2 = scene.mobility_path(4.0 / 4.8);
  EXPECT_NEAR(distance(b2, b), 0.0, 1e-9);
}

TEST(SceneTest, MobilityPathLengthIs4p8Meters) {
  EXPECT_DOUBLE_EQ(Scene(0).mobility_path_length(), 4.8);
}

TEST(SceneTest, MobilityPathContinuous) {
  const Scene scene(0);
  Point prev = scene.mobility_path(0.0);
  for (int i = 1; i <= 100; ++i) {
    const Point cur = scene.mobility_path(i / 100.0);
    EXPECT_LT(distance(prev, cur), 0.06);  // 4.8 m / 100 steps + slack
    prev = cur;
  }
}

TEST(SceneTest, PathFractionRangeChecked) {
  const Scene scene(0);
  EXPECT_THROW(scene.mobility_path(-0.1), std::logic_error);
  EXPECT_THROW(scene.mobility_path(1.1), std::logic_error);
}

}  // namespace
}  // namespace deepcsi::phy
