// End-to-end integration: PHY simulation -> sounding -> feedback
// compression -> (frames on the air) -> monitor capture -> feature
// assembly -> training -> authentication. Small scale, real code path.
#include <gtest/gtest.h>

#include <cstdio>

#include "capture/monitor.h"
#include "capture/pcap.h"
#include "core/pipeline.h"
#include "dataset/splits.h"

namespace deepcsi {
namespace {

// Mini but non-trivial scale: all 10 modules, 6 snapshots per trace.
dataset::Scale mini_scale() { return dataset::Scale{6, 6, 6}; }

core::ExperimentConfig mini_config() {
  core::ExperimentConfig cfg = core::quick_experiment_config();
  cfg.model.filters = 16;
  cfg.model.conv_layers = 2;
  cfg.model.dense = {32, 16};
  cfg.model.dropout = {0.2f, 0.1f};
  cfg.train.epochs = 14;
  return cfg;
}

TEST(IntegrationTest, FingerprintingLearnsOnS1MiniDataset) {
  // The headline claim at mini scale: with matched train/test positions
  // (S1), the classifier identifies the module far above the 10% chance
  // level from quantized beamforming feedback alone.
  dataset::D1Options opt;
  opt.set = dataset::SetId::kS1;
  opt.scale = mini_scale();
  opt.input.subcarrier_stride = 6;
  const dataset::SplitSets split = dataset::build_d1(opt);
  const core::ExperimentResult result =
      core::run_classification(split, mini_config());
  EXPECT_GT(result.accuracy, 0.5) << "chance level is 0.10";
}

TEST(IntegrationTest, ObserverPathPcapToAuthentication) {
  // Full observer loop: beamformee reports -> 802.11 frames -> pcap file
  // -> monitor filter -> feature extraction -> classifier. The classifier
  // is trained directly on trace reports; the observer must reach the
  // exact same features through the air interface.
  const dataset::Scale scale = mini_scale();
  dataset::GeneratorConfig gen;
  dataset::InputSpec spec;
  spec.subcarrier_stride = 6;

  // Train on modules' position-1 traces.
  std::vector<dataset::Trace> traces;
  for (int module = 0; module < phy::kNumModules; ++module)
    traces.push_back(dataset::generate_d1_trace(module, 1, 0, scale, gen));
  nn::LabeledSet train = dataset::make_labeled_set(traces, spec);
  dataset::SplitSets split{train, train};
  core::Authenticator auth =
      core::train_authenticator(split, spec, mini_config());

  // Put module 4's feedback on the air, mixed with module 2's, captured
  // by a monitor that filters beamformee 0.
  std::vector<capture::CapturedPacket> packets;
  int seq = 0;
  for (int module : {4, 2, 4, 4}) {
    capture::BeamformingActionFrame frame;
    frame.ra = capture::MacAddress::for_module(module);
    frame.ta = capture::MacAddress::for_station(0);
    frame.bssid = frame.ra;
    frame.sequence = static_cast<std::uint16_t>(seq);
    frame.mimo_control.nc = 2;
    frame.mimo_control.nr = 3;
    frame.mimo_control.bandwidth = 2;
    frame.mimo_control.codebook_high = true;
    frame.report = feedback::pack_report(
        traces[static_cast<std::size_t>(module)].snapshots[static_cast<std::size_t>(seq) % 6].report);
    packets.push_back({static_cast<double>(seq) * 0.1, frame.serialize()});
    ++seq;
  }

  const std::string path = ::testing::TempDir() + "/observer.pcap";
  capture::write_pcap(path, packets);
  const auto captured = capture::read_pcap(path);
  const auto observed = capture::observe_feedback(
      captured, capture::MacAddress::for_station(0));
  ASSERT_EQ(observed.size(), 4u);

  // The observer's reconstructed reports equal the beamformees' originals.
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const auto& original =
        traces[i == 1 ? 2u : 4u].snapshots[i % 6].report;
    ASSERT_EQ(observed[i].report.per_subcarrier.size(),
              original.per_subcarrier.size());
    for (std::size_t k = 0; k < original.per_subcarrier.size(); k += 37) {
      EXPECT_EQ(observed[i].report.per_subcarrier[k].q_phi,
                original.per_subcarrier[k].q_phi);
      EXPECT_EQ(observed[i].report.per_subcarrier[k].q_psi,
                original.per_subcarrier[k].q_psi);
    }
    // And classification through the air matches direct classification.
    const auto via_air = auth.classify(observed[i].report);
    const auto direct = auth.classify(original);
    EXPECT_EQ(via_air.module_id, direct.module_id);
    EXPECT_NEAR(via_air.confidence, direct.confidence, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, QuantizationCodebookAffectsFeatures) {
  // The same physical sounding with the (5,7) codebook yields coarser
  // features than with (7,9): reconstruction differs more from the
  // high-precision version.
  dataset::GeneratorConfig gen_high;
  dataset::GeneratorConfig gen_low;
  gen_low.quant = feedback::mu_mimo_codebook_low();
  const dataset::Scale scale{2, 2, 6};
  dataset::InputSpec spec;
  spec.subcarrier_stride = 6;

  const auto t_high = dataset::generate_d1_trace(0, 1, 0, scale, gen_high);
  const auto t_low = dataset::generate_d1_trace(0, 1, 0, scale, gen_low);
  const std::size_t n =
      static_cast<std::size_t>(dataset::num_input_channels(spec)) *
      dataset::num_input_columns(spec);
  std::vector<float> fh(n), fl(n);
  dataset::fill_features(t_high.snapshots[0].report, spec, fh.data());
  dataset::fill_features(t_low.snapshots[0].report, spec, fl.data());
  double diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) diff += std::abs(fh[i] - fl[i]);
  EXPECT_GT(diff / static_cast<double>(n), 1e-4);
  EXPECT_LT(diff / static_cast<double>(n), 0.05);  // same channel after all
}

TEST(IntegrationTest, TraceContextSharedAcrossBeamformees) {
  // Both beamformees of a D1 measurement observe the same module power
  // cycle: regenerating beamformee traces must reuse the same trace
  // context (this enables the cross-beamformee experiment of Fig. 11).
  const dataset::Scale scale{2, 2, 6};
  dataset::GeneratorConfig gen;
  const auto bf0 = dataset::generate_d1_trace(5, 2, 0, scale, gen);
  const auto bf1 = dataset::generate_d1_trace(5, 2, 1, scale, gen);
  // Indirect check: reports differ (different RX chains / positions) but
  // both carry module 5's fingerprint; at minimum the generation must be
  // deterministic and distinct across beamformees.
  EXPECT_NE(bf0.snapshots[0].report.per_subcarrier[0].q_phi,
            bf1.snapshots[0].report.per_subcarrier[0].q_phi);
}

}  // namespace
}  // namespace deepcsi
